package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// sessionReq issues one JSON request against the session endpoints.
func sessionReq(t *testing.T, ts *httptest.Server, method, path string, body any) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSessionLifecycleHTTP walks the full session API over HTTP:
// create, list, status, nudge, what-if, timing, close.
func TestSessionLifecycleHTTP(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1})
	srv.Start()

	resp := sessionReq(t, ts, http.MethodPost, "/v1/sessions", SessionSpec{ID: "s1", Circuit: "tree7"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: HTTP %d, want 201", resp.StatusCode)
	}
	st := decodeBody[SessionStatus](t, resp)
	if st.ID != "s1" || st.State != "warm" || st.Gates != 7 {
		t.Fatalf("create status = %+v", st)
	}
	if st.Mu <= 0 || st.Sigma <= 0 {
		t.Fatalf("create must report the baseline moments, got mu=%v sigma=%v", st.Mu, st.Sigma)
	}
	baseMu := st.Mu

	// Status and list see the same session.
	resp = sessionReq(t, ts, http.MethodGet, "/v1/sessions/s1", nil)
	if got := decodeBody[SessionStatus](t, resp); got.ID != "s1" {
		t.Fatalf("status = %+v", got)
	}
	resp = sessionReq(t, ts, http.MethodGet, "/v1/sessions", nil)
	if list := decodeBody[[]SessionStatus](t, resp); len(list) != 1 || list[0].ID != "s1" {
		t.Fatalf("list = %+v", list)
	}

	// Speeding up a gate must lower the circuit delay mean.
	resp = sessionReq(t, ts, http.MethodPatch, "/v1/sessions/s1/sizes",
		sizesBody{Sizes: map[string]float64{"G": 2.0}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nudge: HTTP %d, want 200", resp.StatusCode)
	}
	nr := decodeBody[NudgeReply](t, resp)
	if nr.Applied != 1 || nr.Rebuilt {
		t.Fatalf("nudge reply = %+v", nr)
	}
	if nr.Mu >= baseMu {
		t.Fatalf("speeding the root gate did not reduce mu: %v -> %v", baseMu, nr.Mu)
	}

	// A what-if probe reports the delta without moving the session.
	resp = sessionReq(t, ts, http.MethodPost, "/v1/sessions/s1/whatif",
		sizesBody{Sizes: map[string]float64{"A": 3.0}})
	wr := decodeBody[WhatIfReply](t, resp)
	if wr.Base.Mu != nr.Mu {
		t.Fatalf("whatif base mu %v, want the post-nudge %v", wr.Base.Mu, nr.Mu)
	}
	if wr.DeltaMu >= 0 {
		t.Fatalf("speeding g1 should help: delta_mu = %v", wr.DeltaMu)
	}

	// Timing exposes outputs, criticality and sensitivities.
	resp = sessionReq(t, ts, http.MethodGet, "/v1/sessions/s1/timing?k=3&top=3", nil)
	tr := decodeBody[TimingReply](t, resp)
	if tr.Mu != nr.Mu || tr.K != 3 {
		t.Fatalf("timing reply = %+v", tr)
	}
	if tr.Phi <= tr.Mu {
		t.Fatalf("phi=%v must exceed mu=%v for k=3", tr.Phi, tr.Mu)
	}
	if len(tr.Outputs) != 1 || tr.Outputs[0].Name != "G" {
		t.Fatalf("outputs = %+v", tr.Outputs)
	}
	if len(tr.Critical) != 3 {
		t.Fatalf("top=3 returned %d rows", len(tr.Critical))
	}
	for i := 1; i < len(tr.Critical); i++ {
		if tr.Critical[i].Criticality > tr.Critical[i-1].Criticality {
			t.Fatalf("criticality not sorted: %+v", tr.Critical)
		}
	}

	resp = sessionReq(t, ts, http.MethodDelete, "/v1/sessions/s1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close: HTTP %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	resp = sessionReq(t, ts, http.MethodGet, "/v1/sessions/s1", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status after close: HTTP %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestSessionAdmission pins the session error mapping: 400 bad spec,
// 404 unknown, 409 duplicate, 413 oversized, 429 roster full, plus
// 400s for bad nudge payloads.
func TestSessionAdmission(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1, MaxSessions: 2, MaxGates: 200})
	srv.Start()

	check := func(resp *http.Response, want int, what string) {
		t.Helper()
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s: HTTP %d, want %d", what, resp.StatusCode, want)
		}
	}
	check(sessionReq(t, ts, http.MethodPost, "/v1/sessions", SessionSpec{Circuit: "no-such"}), http.StatusBadRequest, "bad circuit")
	check(sessionReq(t, ts, http.MethodPost, "/v1/sessions", SessionSpec{Circuit: "k2"}), http.StatusRequestEntityTooLarge, "oversized")
	check(sessionReq(t, ts, http.MethodGet, "/v1/sessions/nope", nil), http.StatusNotFound, "unknown status")
	check(sessionReq(t, ts, http.MethodPost, "/v1/sessions", SessionSpec{ID: "a", Circuit: "tree7"}), http.StatusCreated, "create a")
	check(sessionReq(t, ts, http.MethodPost, "/v1/sessions", SessionSpec{ID: "a", Circuit: "fig2"}), http.StatusConflict, "duplicate")
	check(sessionReq(t, ts, http.MethodPost, "/v1/sessions", SessionSpec{ID: "b", Circuit: "fig2"}), http.StatusCreated, "create b")
	resp := sessionReq(t, ts, http.MethodPost, "/v1/sessions", SessionSpec{ID: "c", Circuit: "tree7"})
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatal("roster-full rejection lacks Retry-After")
	}
	check(resp, http.StatusTooManyRequests, "roster full")

	check(sessionReq(t, ts, http.MethodPatch, "/v1/sessions/a/sizes",
		sizesBody{Sizes: map[string]float64{"nope": 1.5}}), http.StatusBadRequest, "unknown gate")
	check(sessionReq(t, ts, http.MethodPatch, "/v1/sessions/a/sizes",
		sizesBody{Sizes: map[string]float64{"i0": 1.5}}), http.StatusBadRequest, "non-gate node")
	check(sessionReq(t, ts, http.MethodPatch, "/v1/sessions/a/sizes",
		sizesBody{Sizes: map[string]float64{"A": -2}}), http.StatusBadRequest, "negative size")
	check(sessionReq(t, ts, http.MethodPatch, "/v1/sessions/a/sizes",
		sizesBody{Sizes: map[string]float64{}}), http.StatusBadRequest, "empty batch")
	check(sessionReq(t, ts, http.MethodGet, "/v1/sessions/a/timing?k=bogus", nil), http.StatusBadRequest, "bad k")
	check(sessionReq(t, ts, http.MethodGet, "/v1/sessions/a/timing?top=-1", nil), http.StatusBadRequest, "bad top")

	// A rejected nudge batch must not partially apply: the batch with
	// one bad entry leaves the session at its pre-batch state.
	check(sessionReq(t, ts, http.MethodPatch, "/v1/sessions/a/sizes",
		sizesBody{Sizes: map[string]float64{"A": 2, "nope": 1.5}}), http.StatusBadRequest, "mixed batch")
	resp = sessionReq(t, ts, http.MethodGet, "/v1/sessions/a/timing", nil)
	tr := decodeBody[TimingReply](t, resp)
	for _, row := range tr.Critical {
		if row.Gate == "A" && row.Size != 1 {
			t.Fatalf("rejected batch partially applied: g1 size %v", row.Size)
		}
	}
}

// timingKey flattens the fields of a timing reply that must be
// bit-identical across evict/rebuild and interleavings (everything
// except the Rebuilt marker).
func timingKey(tr TimingReply) string {
	tr.Rebuilt = false
	b, _ := json.Marshal(tr)
	return string(b)
}

// TestSessionEvictRebuildBitIdentical pins the tentpole's transparency
// contract: an evicted-then-rebuilt session answers bit-identically to
// a never-evicted one that saw the same nudges.
func TestSessionEvictRebuildBitIdentical(t *testing.T) {
	// Budget of one byte: only the most recently touched session stays
	// warm, so every alternation forces an evict + rebuild.
	srv, ts := testServer(t, Options{Pool: 1, SessionBytes: 1})
	srv.Start()
	// The control server never evicts.
	ctl, cts := testServer(t, Options{Pool: 1})
	ctl.Start()

	for _, s := range []*httptest.Server{ts, cts} {
		resp := sessionReq(t, s, http.MethodPost, "/v1/sessions", SessionSpec{ID: "e", Circuit: "apex2"})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create: HTTP %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	nudges := []map[string]float64{
		{"g0": 1.5},
		{"g1": 2.0, "g2": 1.25},
		{"g0": 1.1},
		{"g100": 4.0},
	}
	rebuilds := 0
	for i, nd := range nudges {
		// Evict "e" on the victim server by touching another session.
		resp := sessionReq(t, ts, http.MethodPost, "/v1/sessions", SessionSpec{ID: fmt.Sprintf("bump%d", i), Circuit: "tree7"})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("bump create: HTTP %d", resp.StatusCode)
		}
		resp.Body.Close()
		srv.sessMu.Lock()
		evicted := srv.sessions["e"].eng == nil
		srv.sessMu.Unlock()
		if !evicted {
			t.Fatalf("round %d: session e still warm under a 1-byte budget", i)
		}

		var replies [2]NudgeReply
		for j, s := range []*httptest.Server{ts, cts} {
			resp := sessionReq(t, s, http.MethodPatch, "/v1/sessions/e/sizes", sizesBody{Sizes: nd})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d nudge: HTTP %d", i, resp.StatusCode)
			}
			replies[j] = decodeBody[NudgeReply](t, resp)
		}
		if !replies[0].Rebuilt {
			t.Fatalf("round %d: evicted session did not report rebuilt", i)
		}
		if replies[1].Rebuilt {
			t.Fatalf("round %d: control session was evicted", i)
		}
		rebuilds++
		if replies[0].Mu != replies[1].Mu || replies[0].Sigma != replies[1].Sigma {
			t.Fatalf("round %d: rebuilt moments (%v, %v) != warm (%v, %v)",
				i, replies[0].Mu, replies[0].Sigma, replies[1].Mu, replies[1].Sigma)
		}

		// The full timing view — every output, criticality and gradient
		// entry — must match bit for bit too.
		var keys [2]string
		for j, s := range []*httptest.Server{ts, cts} {
			resp := sessionReq(t, s, http.MethodGet, "/v1/sessions/e/timing?top=0", nil)
			keys[j] = timingKey(decodeBody[TimingReply](t, resp))
		}
		if keys[0] != keys[1] {
			t.Fatalf("round %d: rebuilt timing view diverges from the never-evicted control", i)
		}
	}
	if got := srv.Metrics().CounterValue("service.sessions.rebuilt"); got < int64(rebuilds) {
		t.Fatalf("rebuilt counter %d, want >= %d", got, rebuilds)
	}
	if got := srv.Metrics().CounterValue("service.sessions.evicted"); got == 0 {
		t.Fatal("evicted counter never moved")
	}
}

// TestSessionConcurrentPatchLinearization runs disjoint PATCH batches
// from many goroutines and checks the final state equals a sequential
// application — bit for bit, for any interleaving.
func TestSessionConcurrentPatchLinearization(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1})
	srv.Start()
	ctl, cts := testServer(t, Options{Pool: 1})
	ctl.Start()

	for _, s := range []*httptest.Server{ts, cts} {
		resp := sessionReq(t, s, http.MethodPost, "/v1/sessions", SessionSpec{ID: "p", Circuit: "apex2"})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create: HTTP %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// 16 disjoint 4-gate batches over apex2's g0..g63.
	batches := make([]map[string]float64, 16)
	union := map[string]float64{}
	for i := range batches {
		b := map[string]float64{}
		for j := 0; j < 4; j++ {
			name := fmt.Sprintf("g%d", i*4+j)
			v := 1 + float64(i+1)*0.05 + float64(j)*0.01
			b[name] = v
			union[name] = v
		}
		batches[i] = b
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(batches))
	for _, b := range batches {
		wg.Add(1)
		go func(b map[string]float64) {
			defer wg.Done()
			data, _ := json.Marshal(sizesBody{Sizes: b})
			req, _ := http.NewRequest(http.MethodPatch, ts.URL+"/v1/sessions/p/sizes", bytes.NewReader(data))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("concurrent nudge: HTTP %d", resp.StatusCode)
			}
		}(b)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Control: the union applied as one sequential batch.
	resp := sessionReq(t, cts, http.MethodPatch, "/v1/sessions/p/sizes", sizesBody{Sizes: union})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control nudge: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()

	var keys [2]string
	for j, s := range []*httptest.Server{ts, cts} {
		resp := sessionReq(t, s, http.MethodGet, "/v1/sessions/p/timing?top=0", nil)
		keys[j] = timingKey(decodeBody[TimingReply](t, resp))
	}
	if keys[0] != keys[1] {
		t.Fatal("concurrent PATCHes did not linearize to the sequential result")
	}
}

// TestSessionWhatIfLeavesStateUnchanged pins Trial/Rollback purity at
// the service layer: a what-if leaves the timing view bitwise intact.
func TestSessionWhatIfLeavesStateUnchanged(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1})
	srv.Start()

	resp := sessionReq(t, ts, http.MethodPost, "/v1/sessions", SessionSpec{ID: "w", Circuit: "apex2"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = sessionReq(t, ts, http.MethodPatch, "/v1/sessions/w/sizes",
		sizesBody{Sizes: map[string]float64{"g40": 1.7}})
	resp.Body.Close()

	resp = sessionReq(t, ts, http.MethodGet, "/v1/sessions/w/timing?top=0", nil)
	before := timingKey(decodeBody[TimingReply](t, resp))

	for i := 0; i < 5; i++ {
		resp = sessionReq(t, ts, http.MethodPost, "/v1/sessions/w/whatif",
			sizesBody{Sizes: map[string]float64{"g0": float64(2 + i), "g110": 1.3}})
		wr := decodeBody[WhatIfReply](t, resp)
		if wr.Trial.Mu == wr.Base.Mu && wr.Trial.Sigma == wr.Base.Sigma {
			t.Fatalf("whatif %d: trial did not move the moments", i)
		}
	}

	resp = sessionReq(t, ts, http.MethodGet, "/v1/sessions/w/timing?top=0", nil)
	after := timingKey(decodeBody[TimingReply](t, resp))
	if before != after {
		t.Fatal("what-if probes mutated the session's timing state")
	}
}

// TestSessionRestartRecoversRoster pins the journal contract: a killed
// daemon's next incarnation still knows the roster (sans closed
// sessions), marks it recovered, and rebuilds on first touch.
func TestSessionRestartRecoversRoster(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{StateDir: dir, Pool: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	if _, err := srv.CreateSession(SessionSpec{ID: "keep", Circuit: "tree7"}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateSession(SessionSpec{ID: "drop", Circuit: "fig2"}); err != nil {
		t.Fatal(err)
	}
	// Nudge "keep" so recovery visibly resets to the baseline.
	if _, err := srv.SessionNudge("keep", map[string]float64{"G": 2.0}); err != nil {
		t.Fatal(err)
	}
	if err := srv.CloseSession("drop"); err != nil {
		t.Fatal(err)
	}
	baseline, err := srv.CreateSession(SessionSpec{ID: "ref", Circuit: "tree7"})
	if err != nil {
		t.Fatal(err)
	}
	srv.Kill()

	srv2, err := New(Options{StateDir: dir, Pool: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Kill()
	srv2.Start()
	if got := srv2.RecoveredSessions(); len(got) != 2 || got[0] != "keep" || got[1] != "ref" {
		t.Fatalf("recovered sessions = %v, want [keep ref]", got)
	}
	st, err := srv2.SessionStatus("keep")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Recovered || st.State != "evicted" {
		t.Fatalf("recovered status = %+v", st)
	}
	if _, err := srv2.SessionStatus("drop"); err == nil {
		t.Fatal("closed session survived the restart")
	}
	// First touch rebuilds at the *baseline* sizes (nudges are not
	// journaled — the documented durability contract).
	tr, err := srv2.SessionTiming("keep", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Rebuilt {
		t.Fatal("first touch after recovery did not report rebuilt")
	}
	if tr.Mu != baseline.Mu || tr.Sigma != baseline.Sigma {
		t.Fatalf("recovered session mu=%v sigma=%v, want the baseline %v/%v",
			tr.Mu, tr.Sigma, baseline.Mu, baseline.Sigma)
	}
	// A second create of the recovered ID still conflicts.
	if _, err := srv2.CreateSession(SessionSpec{ID: "keep", Circuit: "tree7"}); err == nil {
		t.Fatal("recovered session id was reusable")
	}
}

// TestSessionIdleReaper checks the idle timeout evicts warm engines
// (roster intact) without touching recently used ones.
func TestSessionIdleReaper(t *testing.T) {
	srv, _ := testServer(t, Options{Pool: 1, SessionIdleTimeout: 300 * time.Millisecond})
	srv.Start()
	if _, err := srv.CreateSession(SessionSpec{ID: "idle", Circuit: "tree7"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := srv.SessionStatus("idle")
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "evicted" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session was never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Still usable: the touch rebuilds.
	tr, err := srv.SessionTiming("idle", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Rebuilt {
		t.Fatal("touch after idle eviction did not rebuild")
	}
	if got := srv.Metrics().CounterValue("service.sessions.idle_evicted"); got == 0 {
		t.Fatal("idle_evicted counter never moved")
	}
}

// TestSessionCreateDrainingRejected pins the 503 path for sessions.
func TestSessionCreateDrainingRejected(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1})
	srv.Start()
	srv.mu.Lock()
	srv.draining = true
	srv.mu.Unlock()
	resp := sessionReq(t, ts, http.MethodPost, "/v1/sessions", SessionSpec{Circuit: "tree7"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: HTTP %d, want 503", resp.StatusCode)
	}
	srv.mu.Lock()
	srv.draining = false
	srv.mu.Unlock()
}

// TestSessionGeneratedIDs checks create without an ID allocates
// sequential sess-… names that survive recovery.
func TestSessionGeneratedIDs(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1})
	srv.Start()
	resp := sessionReq(t, ts, http.MethodPost, "/v1/sessions", SessionSpec{Circuit: "tree7"})
	st := decodeBody[SessionStatus](t, resp)
	if !strings.HasPrefix(st.ID, "sess-") {
		t.Fatalf("generated id = %q", st.ID)
	}
	resp = sessionReq(t, ts, http.MethodPost, "/v1/sessions", SessionSpec{Circuit: "fig2"})
	st2 := decodeBody[SessionStatus](t, resp)
	if st2.ID == st.ID {
		t.Fatalf("generated ids collide: %q", st.ID)
	}
}
