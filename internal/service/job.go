package service

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/nlp"
	"repro/internal/sizing"
)

// JobSpec is the submit payload: a netlist plus a sizing specification,
// in the same textual syntax the statsize CLI accepts. Exactly one of
// Circuit (a built-in name) or Netlist (inline netlist text, with
// Format naming the dialect) selects the circuit.
type JobSpec struct {
	// ID optionally names the job. IDs are client-visible, must match
	// [A-Za-z0-9._-]{1,64}, and must be unique across the daemon's
	// lifetime (journal included); an empty ID gets a generated
	// job-<seq> name. Client-supplied IDs make retried submissions
	// idempotent: resubmitting an accepted ID returns 409.
	ID string `json:"id,omitempty"`
	// Circuit names a built-in circuit: tree7, fig2, apex1, apex2, k2.
	Circuit string `json:"circuit,omitempty"`
	// Netlist carries inline netlist text; Format selects the reader:
	// "ckt" (default), "blif" or "bench".
	Netlist string `json:"netlist,omitempty"`
	Format  string `json:"format,omitempty"`
	// Objective and Constraints use the statsize syntax: "mu",
	// "mu+3sigma", "area", "sigma", "-sigma"; "mu+3sigma<=120",
	// "mu=6.5".
	Objective   string   `json:"objective"`
	Constraints []string `json:"constraints,omitempty"`
	// Formulation is "reduced" (default) or "full"; Solver is "lbfgs"
	// (default) or "newton" (full-space only).
	Formulation string `json:"formulation,omitempty"`
	Solver      string `json:"solver,omitempty"`
	// SigmaK is the sigma model factor sigma_t = SigmaK*mu_t (default
	// 0.25); Limit the maximum speed factor (default 3).
	SigmaK float64 `json:"sigma_k,omitempty"`
	Limit  float64 `json:"limit,omitempty"`
	// Workers bounds the solve's worker goroutines (default 1; results
	// are bit-identical for any value).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS caps the job's wall clock; 0 inherits the server
	// default. The server's JobTimeout, when set, clamps it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MaxOuter overrides the ALM outer-iteration budget (0 = solver
	// default).
	MaxOuter int `json:"max_outer,omitempty"`
	// Greedy routes the job through the TILOS-style sensitivity sizer
	// on the incremental SSTA engine instead of the NLP solver; it
	// needs a mu+Ksigma<= constraint.
	Greedy bool `json:"greedy,omitempty"`
}

// JobResult is the terminal payload of a job, journaled on completion
// and served by the result endpoint. Every field except RuntimeMS is
// deterministic: a recovered job's result is bit-identical to the
// uninterrupted run's (the chaos acceptance contract).
type JobResult struct {
	// S holds the optimized speed factors indexed by NodeID.
	S []float64 `json:"s"`
	// Mu, Sigma and Area are the circuit delay moments and the paper's
	// area measure at S.
	Mu    float64 `json:"mu"`
	Sigma float64 `json:"sigma"`
	Area  float64 `json:"area"`
	// Status is the solver status string ("converged", ...); "greedy"
	// for greedy jobs. StatusCode is the stable integer (int
	// nlp.Status; -1 for greedy).
	Status     string `json:"status"`
	StatusCode int    `json:"status_code"`
	// Outer/Inner/FuncEvals are the whole-solve counters (restored
	// across resumes, so a recovered job reports uninterrupted
	// totals); greedy jobs report Steps in Outer.
	Outer     int `json:"outer"`
	Inner     int `json:"inner,omitempty"`
	FuncEvals int `json:"func_evals,omitempty"`
	// Method is the inner method that produced the iterate (ladder
	// position included); Fallback marks a greedy-fallback sizing
	// after NumericalFailure; Met reports the greedy deadline check.
	Method   string `json:"method,omitempty"`
	Fallback bool   `json:"fallback,omitempty"`
	Met      bool   `json:"met,omitempty"`
	// Retries counts NumericalFailure retry attempts consumed;
	// Recovered marks a job resumed by a daemon restart.
	Retries   int  `json:"retries,omitempty"`
	Recovered bool `json:"recovered,omitempty"`
	// RuntimeMS is wall clock across all attempts in this process —
	// the only nondeterministic field.
	RuntimeMS int64 `json:"runtime_ms"`
}

// JobState is a job's position in the supervision state machine.
type JobState int

// Job states. Queued → Running → (RetryWait → Running)* → one of the
// terminal states Done/Failed/Cancelled. A drain or kill moves Running
// back to Queued (the journal still holds the acceptance, so the next
// start recovers the job).
const (
	JobQueued JobState = iota
	JobRunning
	JobRetryWait
	JobDone
	JobFailed
	JobCancelled
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobRetryWait:
		return "retry-wait"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobStatus is the status-endpoint view of a job.
type JobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Recovered bool   `json:"recovered,omitempty"`
	Retries   int    `json:"retries,omitempty"`
	Stalls    int    `json:"stalls,omitempty"`
	Error     string `json:"error,omitempty"`
	Submitted string `json:"submitted,omitempty"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`
	// Result carries the terminal result summary (present once the
	// job reaches a terminal state).
	Result *JobResult `json:"result,omitempty"`
}

// validID reports whether a client-supplied job ID is safe to use as a
// journal key and a checkpoint file name.
func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	// "." and ".." would escape the state directory.
	return strings.Trim(id, ".") != ""
}

// buildModel resolves the spec's circuit and binds the delay model.
func buildModel(spec *JobSpec) (*delay.Model, error) {
	var (
		circ *netlist.Circuit
		lib  *delay.Library
		err  error
	)
	switch {
	case spec.Circuit != "" && spec.Netlist != "":
		return nil, fmt.Errorf("spec has both circuit %q and an inline netlist", spec.Circuit)
	case spec.Circuit != "":
		circ, lib, err = builtinCircuit(spec.Circuit)
	case spec.Netlist != "":
		lib = delay.Default()
		r := strings.NewReader(spec.Netlist)
		switch spec.Format {
		case "", "ckt":
			circ, err = netlist.ReadCKT(r)
		case "blif":
			circ, err = netlist.ReadBLIF(r)
		case "bench":
			circ, err = netlist.ReadBench(r)
		default:
			return nil, fmt.Errorf("unknown netlist format %q", spec.Format)
		}
	default:
		return nil, fmt.Errorf("spec names no circuit")
	}
	if err != nil {
		return nil, err
	}
	g, err := netlist.Compile(circ)
	if err != nil {
		return nil, err
	}
	m, err := delay.Bind(g, lib)
	if err != nil {
		return nil, err
	}
	if spec.Limit != 0 {
		m.Limit = spec.Limit
	}
	sigmaK := spec.SigmaK
	if sigmaK == 0 {
		sigmaK = 0.25
	}
	m.Sigma = delay.Proportional{K: sigmaK}
	return m, nil
}

// builtinCircuit resolves the built-in circuit names the CLIs accept.
func builtinCircuit(name string) (*netlist.Circuit, *delay.Library, error) {
	switch name {
	case "tree7":
		return netlist.Tree7(), delay.PaperTree(), nil
	case "fig2":
		return netlist.Fig2Example(), delay.Default(), nil
	case "apex1":
		return netlist.Apex1Like(), delay.Default(), nil
	case "apex2":
		return netlist.Apex2Like(), delay.Default(), nil
	case "k2":
		return netlist.K2Like(), delay.Default(), nil
	default:
		return nil, nil, fmt.Errorf("unknown built-in circuit %q", name)
	}
}

// sizingSpec lowers the JSON job spec onto a sizing.Spec (recorder,
// checkpointing and fault seams are attached by the supervisor).
func sizingSpec(spec *JobSpec) (sizing.Spec, error) {
	var sp sizing.Spec
	obj, err := sizing.ParseObjective(spec.Objective)
	if err != nil {
		return sp, err
	}
	sp.Objective = obj
	for _, c := range spec.Constraints {
		con, err := sizing.ParseConstraint(c)
		if err != nil {
			return sp, err
		}
		sp.Constraints = append(sp.Constraints, con)
	}
	switch spec.Formulation {
	case "", "reduced":
		sp.Formulation = sizing.Reduced
	case "full":
		sp.Formulation = sizing.FullSpace
	default:
		return sp, fmt.Errorf("unknown formulation %q", spec.Formulation)
	}
	switch spec.Solver {
	case "", "lbfgs":
		sp.Solver.Method = nlp.LBFGS
	case "newton":
		sp.Solver.Method = nlp.NewtonCG
	default:
		return sp, fmt.Errorf("unknown solver %q", spec.Solver)
	}
	sp.Solver.MaxOuter = spec.MaxOuter
	sp.Workers = spec.Workers
	if sp.Workers == 0 {
		sp.Workers = 1
	}
	if spec.Greedy {
		// Validate the deadline requirement at admission, not at run
		// time: GreedyFromSpec needs a mu+Ksigma<= constraint.
		if _, ok := sizing.GreedyFromSpec(sp); !ok {
			return sp, fmt.Errorf("greedy jobs need a mu+Ksigma<= deadline constraint")
		}
	}
	return sp, nil
}

// job is the in-memory supervision record of one accepted solve.
// Mutable fields are guarded by the server mutex; the running solve
// only touches them through the server's state helpers.
type job struct {
	id   string
	seq  int
	spec JobSpec

	state     JobState
	recovered bool // resumed from a previous process's journal
	attempt   int  // solve attempts in this process (retries + 1 once running)
	retries   int  // NumericalFailure retries consumed
	stalls    int  // watchdog stall episodes
	errMsg    string

	cancel    func() // non-nil while running; user/stall cancellation
	cancelled bool   // the cancel endpoint fired (vs drain/kill)

	submitted, started, finished time.Time

	result *JobResult
	hub    *eventHub
}

// status renders the mutex-guarded view; callers hold the server lock.
func (j *job) status() JobStatus {
	st := JobStatus{
		ID:        j.id,
		State:     j.state.String(),
		Recovered: j.recovered,
		Retries:   j.retries,
		Stalls:    j.stalls,
		Error:     j.errMsg,
		Result:    j.result,
	}
	if !j.submitted.IsZero() {
		st.Submitted = j.submitted.UTC().Format(time.RFC3339Nano)
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}
