package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/nlp"
)

// testServer boots a server on a temp state dir plus an httptest
// front end; the cleanup drains it.
func testServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	if opt.StateDir == "" {
		opt.StateDir = t.TempDir()
	}
	srv, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return srv, ts
}

// deadlineSpec is the standard fast-but-multi-outer test job: tree7
// area minimization under a tight mu+3sigma deadline.
func deadlineSpec(id string) JobSpec {
	return JobSpec{
		ID:          id,
		Circuit:     "tree7",
		Objective:   "area",
		Constraints: []string{"mu+3sigma<=6"},
	}
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitTerminal polls a job to a terminal state over HTTP.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeBody[JobStatus](t, resp)
		switch st.State {
		case "done", "failed", "cancelled":
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

func TestSubmitSolveResult(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1})
	srv.Start()

	resp := postJob(t, ts, deadlineSpec("t1"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}
	st := decodeBody[JobStatus](t, resp)
	if st.ID != "t1" {
		t.Fatalf("accepted id %q", st.ID)
	}

	st = waitTerminal(t, ts, "t1")
	if st.State != "done" {
		t.Fatalf("job ended %q (%s), want done", st.State, st.Error)
	}

	rr, err := http.Get(ts.URL + "/v1/jobs/t1/result")
	if err != nil {
		t.Fatal(err)
	}
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d", rr.StatusCode)
	}
	res := decodeBody[JobResult](t, rr)
	if len(res.S) == 0 || res.Mu <= 0 || res.Area <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Status == "" || res.Outer == 0 {
		t.Fatalf("solver bookkeeping missing: %+v", res)
	}

	// The supervision counters surface on /metrics.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(prom), "service_jobs_accepted_total 1") {
		t.Fatalf("/metrics lacks the accepted counter:\n%s", prom)
	}
}

func TestUnknownAndUnfinished(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1})
	hold := make(chan struct{})
	srv.testSolveDelay = func(string, int) { <-hold }
	srv.Start()
	defer close(hold)

	if resp, _ := http.Get(ts.URL + "/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status: HTTP %d, want 404", resp.StatusCode)
	}
	postJob(t, ts, deadlineSpec("held")).Body.Close()
	if resp, _ := http.Get(ts.URL + "/v1/jobs/held/result"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("unfinished result: HTTP %d, want 409", resp.StatusCode)
	}
}

func TestAdmissionControl(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1, QueueDepth: 1})
	hold := make(chan struct{})
	srv.testSolveDelay = func(string, int) { <-hold }
	srv.Start()

	// One running (held), one queued — the queue is now full.
	postJob(t, ts, deadlineSpec("a")).Body.Close()
	waitState(t, srv, "a", JobRunning)
	postJob(t, ts, deadlineSpec("b")).Body.Close()

	resp := postJob(t, ts, deadlineSpec("c"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	resp.Body.Close()
	if srv.Metrics().CounterValue("service.jobs.rejected") != 1 {
		t.Fatal("rejected counter not incremented")
	}

	close(hold)
	waitTerminal(t, ts, "a")
	waitTerminal(t, ts, "b")

	// Resubmitting the rejected job after the queue clears succeeds.
	resp = postJob(t, ts, deadlineSpec("c"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit after backpressure: HTTP %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
	waitTerminal(t, ts, "c")
}

// waitState spins until a job reaches the wanted state.
func waitState(t *testing.T, srv *Server, id string, want JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := srv.Status(id)
		if err == nil && st.State == want.String() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
}

func TestSubmitValidation(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1, MaxGates: 4})
	srv.Start()

	cases := []struct {
		name string
		spec JobSpec
		code int
	}{
		{"bad id", JobSpec{ID: "../../etc/passwd", Circuit: "tree7", Objective: "mu"}, http.StatusBadRequest},
		{"dotdot id", JobSpec{ID: "..", Circuit: "tree7", Objective: "mu"}, http.StatusBadRequest},
		{"no circuit", JobSpec{ID: "x1", Objective: "mu"}, http.StatusBadRequest},
		{"unknown circuit", JobSpec{ID: "x2", Circuit: "zzz", Objective: "mu"}, http.StatusBadRequest},
		{"bad objective", JobSpec{ID: "x3", Circuit: "fig2", Objective: "speed"}, http.StatusBadRequest},
		{"bad constraint", JobSpec{ID: "x4", Circuit: "fig2", Objective: "mu", Constraints: []string{"mu>>1"}}, http.StatusBadRequest},
		{"greedy without deadline", JobSpec{ID: "x5", Circuit: "fig2", Objective: "mu", Greedy: true}, http.StatusBadRequest},
		{"too large", JobSpec{ID: "x6", Circuit: "tree7", Objective: "mu"}, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp := postJob(t, ts, c.spec)
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: HTTP %d, want %d", c.name, resp.StatusCode, c.code)
		}
	}

	// fig2 (3 gates) fits under MaxGates and duplicates conflict.
	resp := postJob(t, ts, JobSpec{ID: "dup", Circuit: "fig2", Objective: "mu"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fig2 submit: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJob(t, ts, JobSpec{ID: "dup", Circuit: "fig2", Objective: "mu"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate id: HTTP %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	waitTerminal(t, ts, "dup")
}

func TestInlineNetlist(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1})
	srv.Start()

	var sb strings.Builder
	if err := netlist.WriteCKT(&sb, netlist.Fig2Example()); err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{ID: "inline", Netlist: sb.String(), Objective: "mu+3sigma"}
	resp := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("inline submit: HTTP %d: %s", resp.StatusCode, body)
	}
	resp.Body.Close()
	st := waitTerminal(t, ts, "inline")
	if st.State != "done" {
		t.Fatalf("inline job ended %q (%s)", st.State, st.Error)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1, QueueDepth: 4})
	hold := make(chan struct{})
	srv.testSolveDelay = func(string, int) { <-hold }
	srv.Start()

	postJob(t, ts, deadlineSpec("run")).Body.Close()
	waitState(t, srv, "run", JobRunning)
	postJob(t, ts, deadlineSpec("queued")).Body.Close()

	// Cancelling the queued job terminates it without ever running.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/queued", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitTerminal(t, ts, "queued")
	if st.State != "cancelled" {
		t.Fatalf("queued job ended %q, want cancelled", st.State)
	}

	// Cancelling the running job takes effect at the next solver
	// boundary once released.
	cr, err := http.Post(ts.URL+"/v1/jobs/run/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cr.Body.Close()
	close(hold)
	st = waitTerminal(t, ts, "run")
	if st.State != "cancelled" {
		t.Fatalf("running job ended %q, want cancelled", st.State)
	}
	if n := srv.Metrics().CounterValue("service.jobs.cancelled"); n != 2 {
		t.Fatalf("cancelled counter %d, want 2", n)
	}
}

func TestRetryAfterNumericalFailure(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1, MaxRetries: 2, RetryBackoff: time.Millisecond})
	// Attempt 0 solves a poisoned problem: a persistent NaN objective
	// element defeats every recovery rung and exits NumericalFailure.
	// Attempt 1 runs clean, so exactly one service-level retry heals
	// the job.
	srv.testWrap = func(id string, attempt int, p *nlp.Problem) *nlp.Problem {
		if attempt > 0 {
			return p
		}
		wrapped, _ := faults.Wrap(p, []faults.Fault{{Elem: 0, Call: 1, Kind: faults.EvalNaN, Persist: true}}, nil)
		return wrapped
	}
	srv.Start()

	postJob(t, ts, deadlineSpec("heal")).Body.Close()
	st := waitTerminal(t, ts, "heal")
	if st.State != "done" {
		t.Fatalf("job ended %q (%s), want done after retry", st.State, st.Error)
	}
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
	if n := srv.Metrics().CounterValue("service.jobs.retried"); n != 1 {
		t.Fatalf("retried counter %d, want 1", n)
	}
	if st.Result == nil || st.Result.Retries != 1 {
		t.Fatalf("result lacks retry bookkeeping: %+v", st.Result)
	}
}

func TestRetriesExhaustedKeepsFallback(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1, MaxRetries: 1, RetryBackoff: time.Millisecond})
	// Every attempt is poisoned: the job must fail after MaxRetries,
	// and — because the spec carries a mu+Ksigma deadline — keep the
	// greedy fallback sizing as its result.
	srv.testWrap = func(id string, attempt int, p *nlp.Problem) *nlp.Problem {
		wrapped, _ := faults.Wrap(p, []faults.Fault{{Elem: 0, Call: 1, Kind: faults.EvalNaN, Persist: true}}, nil)
		return wrapped
	}
	srv.Start()

	postJob(t, ts, deadlineSpec("doomed")).Body.Close()
	st := waitTerminal(t, ts, "doomed")
	if st.State != "failed" {
		t.Fatalf("job ended %q, want failed", st.State)
	}
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
	if st.Result == nil || !st.Result.Fallback || len(st.Result.S) == 0 {
		t.Fatalf("failed job should keep the greedy fallback sizing: %+v", st.Result)
	}
}

func TestGreedyJob(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1})
	srv.Start()

	spec := deadlineSpec("greedy")
	spec.Greedy = true
	postJob(t, ts, spec).Body.Close()
	st := waitTerminal(t, ts, "greedy")
	if st.State != "done" {
		t.Fatalf("greedy job ended %q (%s)", st.State, st.Error)
	}
	if st.Result == nil || st.Result.Status != "greedy" || st.Result.StatusCode != -1 {
		t.Fatalf("greedy result: %+v", st.Result)
	}
	if len(st.Result.S) == 0 || st.Result.Outer == 0 {
		t.Fatalf("greedy result lacks sizing steps: %+v", st.Result)
	}
}

func TestEventsStreamReplay(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1})
	srv.Start()

	postJob(t, ts, deadlineSpec("ev")).Body.Close()
	waitTerminal(t, ts, "ev")

	resp, err := http.Get(ts.URL + "/v1/jobs/ev/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`data: {"scope":"job","name":"started"}`,
		`"scope":"alm","name":"outer"`,
		`"scope":"sizing","name":"result"`,
		`data: {"scope":"job","name":"done"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("event stream lacks %q:\n%s", want, text)
		}
	}
	// The replay is deterministic: a second read returns the same
	// stream byte for byte.
	resp2, err := http.Get(ts.URL + "/v1/jobs/ev/events")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(body, body2) {
		t.Fatal("event replay is not deterministic")
	}
}

func TestReadyzFlipsOnDrain(t *testing.T) {
	srv, err := New(Options{StateDir: t.TempDir(), Pool: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Start()

	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: HTTP %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: HTTP %d, want 503", resp.StatusCode)
	}
	resp := postJob(t, ts, deadlineSpec("late"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: HTTP %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestGeneratedJobIDs(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1})
	srv.Start()
	spec := deadlineSpec("")
	resp := postJob(t, ts, spec)
	st := decodeBody[JobStatus](t, resp)
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("generated-id submit: HTTP %d, id %q", resp.StatusCode, st.ID)
	}
	if !validID(st.ID) {
		t.Fatalf("generated id %q is not valid", st.ID)
	}
	waitTerminal(t, ts, st.ID)
}

func TestJobTimeoutFailsJob(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1, JobTimeout: 50 * time.Millisecond})
	hold := make(chan struct{})
	srv.testSolveDelay = func(string, int) {
		// Outlast the per-job deadline, then solve against the expired
		// context.
		select {
		case <-hold:
		case <-time.After(150 * time.Millisecond):
		}
	}
	srv.Start()
	defer close(hold)

	postJob(t, ts, deadlineSpec("slow")).Body.Close()
	st := waitTerminal(t, ts, "slow")
	if st.State != "failed" {
		t.Fatalf("timed-out job ended %q, want failed", st.State)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("timed-out job error %q", st.Error)
	}
}
