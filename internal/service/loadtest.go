package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// LoadTestOptions configures the in-repo load harness: concurrent
// clients submitting real jobs over real HTTP against a daemon that a
// chaos goroutine hard-kills and restarts mid-run. The harness is the
// acceptance evidence for the service tentpole — it demonstrates
// admission under pressure, crash recovery under load, and records
// throughput/latency into BENCH_service.json.
type LoadTestOptions struct {
	// Jobs is the total number of jobs to push through (default 12).
	Jobs int
	// Clients is the number of concurrent submitters (default 3).
	Clients int
	// Kills is how many times the chaos goroutine SIGKILLs (in
	// process: Server.Kill + listener teardown) and restarts the
	// daemon mid-run (default 2; 0 disables chaos).
	Kills int
	// Pool/QueueDepth configure each daemon incarnation (defaults 2/8).
	Pool       int
	QueueDepth int
	// StateDir is the shared state directory every incarnation uses;
	// empty creates a temp dir that is removed afterwards.
	StateDir string
	// Circuit, Objective, Constraint and MaxOuter shape the per-job
	// work (defaults "tree7", "area" under "mu+3sigma<=6" — a tight
	// deadline that drives multiple outer iterations, so checkpoint
	// boundaries exist for kills to land between).
	Circuit    string
	Objective  string
	Constraint string
	MaxOuter   int
	// SolveDelay pads each solve attempt (default 150ms). The builtin
	// circuits solve in microseconds — far inside the kill windows —
	// so the harness widens each job to a realistic occupancy, giving
	// the chaos kills running work to interrupt.
	SolveDelay time.Duration
	// Timeout bounds the whole run (default 120s).
	Timeout time.Duration
}

func (o LoadTestOptions) withDefaults() LoadTestOptions {
	if o.Jobs <= 0 {
		o.Jobs = 12
	}
	if o.Clients <= 0 {
		o.Clients = 3
	}
	if o.Kills < 0 {
		o.Kills = 0
	}
	if o.Pool <= 0 {
		o.Pool = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	if o.Circuit == "" {
		o.Circuit = "tree7"
	}
	if o.Objective == "" {
		o.Objective = "area"
	}
	if o.Constraint == "" {
		o.Constraint = "mu+3sigma<=6"
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = 12
	}
	if o.SolveDelay == 0 {
		o.SolveDelay = 150 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 120 * time.Second
	}
	return o
}

// LoadTestReport is the harness result, serialized into
// BENCH_service.json by cmd/sizingd -loadtest and make bench-service.
type LoadTestReport struct {
	Config struct {
		Jobs         int    `json:"jobs"`
		Clients      int    `json:"clients"`
		Kills        int    `json:"kills"`
		Pool         int    `json:"pool"`
		QueueDepth   int    `json:"queue_depth"`
		Circuit      string `json:"circuit"`
		Objective    string `json:"objective"`
		Constraint   string `json:"constraint"`
		MaxOuter     int    `json:"max_outer"`
		SolveDelayMS int64  `json:"solve_delay_ms"`
	} `json:"config"`
	// Done/Failed/Cancelled partition the terminal states observed by
	// the clients; every submitted job must land in exactly one.
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// Restarts counts chaos kill/restart cycles actually performed;
	// Counters sums the service.jobs.* counters across incarnations.
	Restarts int              `json:"restarts"`
	Counters map[string]int64 `json:"counters"`
	// Submit429 counts admission rejections clients absorbed;
	// RetriedSubmits counts their successful re-submissions.
	Submit429 int64 `json:"submit_429"`
	// LatencyMS summarizes submit→terminal latency per job, restart
	// downtime included.
	LatencyMS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	WallMS     int64   `json:"wall_ms"`
	Throughput float64 `json:"throughput_jobs_per_sec"`
}

// harness owns the daemon incarnation the clients talk to.
type harness struct {
	opt  LoadTestOptions
	addr string

	mu       sync.Mutex
	srv      *Server
	httpSrv  *http.Server
	counters map[string]int64
	restarts int
}

// serviceCounters are the per-job supervision counters summed across
// daemon incarnations into the report.
var serviceCounters = []string{
	"service.jobs.accepted", "service.jobs.rejected",
	"service.jobs.completed", "service.jobs.failed",
	"service.jobs.cancelled", "service.jobs.retried",
	"service.jobs.recovered", "service.jobs.drained",
	"service.jobs.stalled",
}

// start boots a daemon incarnation on the harness address (":0" once,
// then the bound address forever after, so clients survive restarts).
func (h *harness) start() error {
	srv, err := New(Options{
		StateDir:   h.opt.StateDir,
		Pool:       h.opt.Pool,
		QueueDepth: h.opt.QueueDepth,
	})
	if err != nil {
		return err
	}
	if d := h.opt.SolveDelay; d > 0 {
		srv.testSolveDelay = func(string, int) { time.Sleep(d) }
	}
	addr := h.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	for tries := 0; ; tries++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if tries >= 20 {
			srv.Kill()
			return err
		}
		// The previous incarnation's listener may need a beat to
		// release the port after a kill.
		time.Sleep(50 * time.Millisecond)
	}
	if h.addr == "" {
		// Bound once; restarts rebind the same address (clients keep a
		// stable base URL across kills).
		h.addr = ln.Addr().String()
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	srv.Start()
	h.mu.Lock()
	h.srv, h.httpSrv = srv, hs
	h.mu.Unlock()
	return nil
}

// harvest folds one incarnation's counters into the running totals.
func (h *harness) harvest(srv *Server) {
	for _, name := range serviceCounters {
		h.counters[name] += srv.Metrics().CounterValue(name)
	}
}

// kill tears the incarnation down the hard way: listener gone,
// contexts cancelled, nothing flushed beyond what the journal and
// checkpoint files already hold.
func (h *harness) kill() {
	h.mu.Lock()
	srv, hs := h.srv, h.httpSrv
	h.srv, h.httpSrv = nil, nil
	h.mu.Unlock()
	if hs != nil {
		hs.Close()
	}
	if srv != nil {
		srv.Kill()
		h.harvest(srv)
	}
}

// drain shuts the final incarnation down gracefully.
func (h *harness) drain(ctx context.Context) error {
	h.mu.Lock()
	srv, hs := h.srv, h.httpSrv
	h.srv, h.httpSrv = nil, nil
	h.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Drain(ctx)
		h.harvest(srv)
	}
	if hs != nil {
		hs.Close()
	}
	return err
}

// RunLoadTest drives the harness: Clients goroutines push Jobs jobs
// through the HTTP API while the chaos goroutine performs Kills
// kill/restart cycles; every job is polled to a terminal state. The
// report aggregates latencies, counters across incarnations and the
// final drain. An error means the harness itself failed (timeout,
// lost job, daemon that would not restart) — the acceptance criteria,
// not a soft statistic.
func RunLoadTest(opt LoadTestOptions) (*LoadTestReport, error) {
	opt = opt.withDefaults()
	if opt.StateDir == "" {
		dir, err := os.MkdirTemp("", "sizingd-load-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opt.StateDir = dir
	}

	ctx, cancel := context.WithTimeout(context.Background(), opt.Timeout)
	defer cancel()

	h := &harness{opt: opt, counters: make(map[string]int64)}
	if err := h.start(); err != nil {
		return nil, err
	}

	var (
		mu        sync.Mutex
		latencies []float64
		submit429 int64
		done      int
		failed    int
		cancelled int
		firstErr  error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	client := &http.Client{Timeout: 10 * time.Second}
	base := func() string { return "http://" + h.addr }

	// Chaos: kill/restart cycles spread across the run, each waiting
	// for work to be in flight so the kill actually interrupts solves.
	var chaosWG sync.WaitGroup
	if opt.Kills > 0 {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			for k := 0; k < opt.Kills; k++ {
				select {
				case <-time.After(400 * time.Millisecond):
				case <-ctx.Done():
					return
				}
				h.kill()
				h.mu.Lock()
				h.restarts++
				h.mu.Unlock()
				if err := h.start(); err != nil {
					fail(fmt.Errorf("loadtest: restart %d: %w", k+1, err))
					return
				}
			}
		}()
	}

	// Clients: submit with retry on 429/refused (the daemon may be
	// mid-restart), then poll to terminal. A 409 on resubmit means the
	// earlier attempt was accepted before the kill — the journal kept
	// it, so the client just moves on to polling.
	jobCh := make(chan int)
	var clientWG sync.WaitGroup
	start := time.Now()
	for c := 0; c < opt.Clients; c++ {
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			for n := range jobCh {
				id := fmt.Sprintf("load-%04d", n)
				t0 := time.Now()
				if err := submitJob(ctx, client, base, id, opt, &submit429, &mu); err != nil {
					fail(err)
					return
				}
				state, err := pollJob(ctx, client, base, id)
				if err != nil {
					fail(err)
					return
				}
				lat := float64(time.Since(t0).Milliseconds())
				mu.Lock()
				latencies = append(latencies, lat)
				switch state {
				case "done":
					done++
				case "failed":
					failed++
				case "cancelled":
					cancelled++
				}
				mu.Unlock()
			}
		}()
	}
	for n := 0; n < opt.Jobs; n++ {
		select {
		case jobCh <- n:
		case <-ctx.Done():
			n = opt.Jobs
		}
	}
	close(jobCh)
	clientWG.Wait()
	chaosWG.Wait()

	drainCtx, drainCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer drainCancel()
	if err := h.drain(drainCtx); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("loadtest: drain: %w", err)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if total := done + failed + cancelled; total != opt.Jobs {
		return nil, fmt.Errorf("loadtest: %d of %d jobs reached a terminal state", total, opt.Jobs)
	}

	rep := &LoadTestReport{
		Done:      done,
		Failed:    failed,
		Cancelled: cancelled,
		Restarts:  h.restarts,
		Counters:  h.counters,
		Submit429: submit429,
		WallMS:    time.Since(start).Milliseconds(),
	}
	rep.Config.Jobs = opt.Jobs
	rep.Config.Clients = opt.Clients
	rep.Config.Kills = opt.Kills
	rep.Config.Pool = opt.Pool
	rep.Config.QueueDepth = opt.QueueDepth
	rep.Config.Circuit = opt.Circuit
	rep.Config.Objective = opt.Objective
	rep.Config.Constraint = opt.Constraint
	rep.Config.MaxOuter = opt.MaxOuter
	rep.Config.SolveDelayMS = opt.SolveDelay.Milliseconds()
	sort.Float64s(latencies)
	rep.LatencyMS.P50 = quantileMS(latencies, 0.50)
	rep.LatencyMS.P90 = quantileMS(latencies, 0.90)
	rep.LatencyMS.P99 = quantileMS(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.LatencyMS.Max = latencies[n-1]
	}
	if rep.WallMS > 0 {
		rep.Throughput = float64(opt.Jobs) / (float64(rep.WallMS) / 1000)
	}
	return rep, nil
}

// submitJob POSTs one job, absorbing 429 (admission backpressure),
// 503 (drain never happens mid-run, but a restart can briefly 503)
// and connection errors (daemon mid-restart). A 409 means an earlier
// attempt was journaled before a kill: accepted, move on.
func submitJob(ctx context.Context, client *http.Client, base func() string, id string, opt LoadTestOptions, submit429 *int64, mu *sync.Mutex) error {
	spec := JobSpec{
		ID:          id,
		Circuit:     opt.Circuit,
		Objective:   opt.Objective,
		Constraints: []string{opt.Constraint},
		MaxOuter:    opt.MaxOuter,
	}
	body, _ := json.Marshal(spec)
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("loadtest: submit %s: %w", id, err)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base()+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			// Daemon mid-restart; back off and retry.
			sleepCtx(ctx, 50*time.Millisecond)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusConflict:
			return nil
		case http.StatusTooManyRequests:
			mu.Lock()
			*submit429++
			mu.Unlock()
			sleepCtx(ctx, 100*time.Millisecond)
		case http.StatusServiceUnavailable:
			sleepCtx(ctx, 100*time.Millisecond)
		default:
			return fmt.Errorf("loadtest: submit %s: HTTP %d", id, resp.StatusCode)
		}
	}
}

// pollJob polls a job's status until it is terminal, riding through
// restarts (connection errors and brief 404s while the next
// incarnation replays its journal).
func pollJob(ctx context.Context, client *http.Client, base func() string, id string) (string, error) {
	for {
		if err := ctx.Err(); err != nil {
			return "", fmt.Errorf("loadtest: poll %s: %w", id, err)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base()+"/v1/jobs/"+id, nil)
		if err != nil {
			return "", err
		}
		resp, err := client.Do(req)
		if err != nil {
			sleepCtx(ctx, 50*time.Millisecond)
			continue
		}
		var st JobStatus
		decErr := json.NewDecoder(resp.Body).Decode(&st)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decErr != nil {
			sleepCtx(ctx, 50*time.Millisecond)
			continue
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return st.State, nil
		}
		sleepCtx(ctx, 50*time.Millisecond)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// quantileMS reads quantile p from ascending latencies with the same
// nearest-rank convention the telemetry histograms use.
func quantileMS(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteReport writes the report as indented JSON to path.
func WriteReport(path string, rep *LoadTestReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
