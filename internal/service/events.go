package service

import (
	"math"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// eventHub fans a job's convergence events out to SSE subscribers.
// Every published event is also kept in an in-order history, so a
// subscriber attaching mid-solve (or after completion) replays the
// full stream before receiving live events — the stream a client sees
// is always the complete, deterministic event sequence.
type eventHub struct {
	mu      sync.Mutex
	history []string
	subs    map[chan string]struct{}
	closed  bool
	lagged  int // subscribers closed for lagging (observability + tests)
}

func newEventHub() *eventHub {
	return &eventHub{subs: make(map[chan string]struct{})}
}

// publish appends one rendered event and wakes subscribers. Slow
// subscribers never block the solve: a subscriber whose channel is
// full is lagging — dropping the event silently would violate the
// complete-sequence contract, so the laggard is removed and its
// channel closed instead. The client sees its stream end, reconnects,
// and replays the full history (which always has every event).
func (h *eventHub) publish(ev string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.history = append(h.history, ev)
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			h.lagged++
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// close ends the stream; subscribers' channels are closed after the
// history is final.
func (h *eventHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
}

// subscribe returns the history so far plus a live channel (nil when
// the stream already ended — the history is complete).
func (h *eventHub) subscribe() ([]string, chan string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	hist := append([]string(nil), h.history...)
	if h.closed {
		return hist, nil
	}
	ch := make(chan string, 64)
	h.subs[ch] = struct{}{}
	return hist, ch
}

func (h *eventHub) unsubscribe(ch chan string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
	}
}

// streamedScope reports whether a telemetry scope is part of the
// client-facing convergence stream. The high-frequency inner-iteration
// scopes (lbfgs/newton/projgrad) and the engine/sweep spans stay on
// the metrics side; clients get the outer-loop trajectory and the
// job-level state transitions.
func streamedScope(scope string) bool {
	switch scope {
	case "alm", "sizing", "solve", "greedy", "job":
		return true
	}
	return false
}

// jobRecorder is the telemetry.Recorder attached to a job's solve: it
// forwards everything to the server's metrics chain and renders the
// outer-loop events ("alm.outer" and friends) into the job's SSE hub.
type jobRecorder struct {
	next telemetry.Recorder
	hub  *eventHub
}

func (r *jobRecorder) Event(scope, name string, fields ...telemetry.KV) {
	if r.next != nil {
		r.next.Event(scope, name, fields...)
	}
	if streamedScope(scope) {
		r.hub.publish(renderEvent(scope, name, fields))
	}
}

func (r *jobRecorder) Count(name string, delta int64) {
	if r.next != nil {
		r.next.Count(name, delta)
	}
}

func (r *jobRecorder) Gauge(name string, v float64) {
	if r.next != nil {
		r.next.Gauge(name, v)
	}
}

func (r *jobRecorder) Span(name string, d time.Duration) {
	if r.next != nil {
		r.next.Span(name, d)
	}
}

// renderEvent formats one event as a JSON object with ordered fields,
// matching the trace writer's shortest-round-trip float encoding so
// the SSE stream is as deterministic as the JSONL trace.
func renderEvent(scope, name string, fields []telemetry.KV) string {
	b := make([]byte, 0, 128)
	b = append(b, `{"scope":"`...)
	b = append(b, scope...)
	b = append(b, `","name":"`...)
	b = append(b, name...)
	b = append(b, '"')
	for _, f := range fields {
		b = append(b, ',', '"')
		b = append(b, f.Key...)
		b = append(b, '"', ':')
		b = appendEventFloat(b, f.Val)
	}
	b = append(b, '}')
	return string(b)
}

// appendEventFloat mirrors the telemetry trace float encoding:
// shortest round-trip decimal for finite values, quoted sentinels for
// non-finite ones.
func appendEventFloat(b []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(b, `"NaN"`...)
	case math.IsInf(v, 1):
		return append(b, `"+Inf"`...)
	case math.IsInf(v, -1):
		return append(b, `"-Inf"`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
