package service

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// writeTorn appends raw bytes without a trailing newline — the torn
// tail a crash mid-append leaves behind.
func writeTorn(t *testing.T, path, raw string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, raw); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	spec := JobSpec{ID: "a", Circuit: "tree7", Objective: "mu"}
	if err := j.append(journalRecord{T: "accepted", ID: "a", Seq: 1, Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	res := &JobResult{Mu: 7.5, Status: "converged"}
	if err := j.append(journalRecord{T: "done", ID: "a", State: "done", Res: res}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	_, recs, err = openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	if recs[0].T != "accepted" || recs[0].Spec == nil || recs[0].Spec.Circuit != "tree7" {
		t.Fatalf("acceptance did not round-trip: %+v", recs[0])
	}
	if recs[1].T != "done" || recs[1].Res == nil || recs[1].Res.Mu != 7.5 {
		t.Fatalf("terminal record did not round-trip: %+v", recs[1])
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{ID: "a", Circuit: "tree7", Objective: "mu"}
	if err := j.append(journalRecord{T: "accepted", ID: "a", Seq: 1, Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	j.close()
	// A crash mid-append tears the final line.
	writeTorn(t, path, `{"t":"done","id":"a","sta`)

	_, recs, err := openJournal(path)
	if err != nil {
		t.Fatalf("torn tail must replay cleanly, got %v", err)
	}
	if len(recs) != 1 || recs[0].ID != "a" {
		t.Fatalf("replayed %+v, want the single acceptance", recs)
	}
}

func TestJournalRejectsInteriorCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	writeTorn(t, path, "{garbage\n")
	writeTorn(t, path, `{"t":"accepted","id":"a","seq":1,"spec":{"circuit":"tree7","objective":"mu"}}`+"\n")
	if _, _, err := openJournal(path); err == nil {
		t.Fatal("interior corruption must fail replay, not be skipped")
	}
}

func TestJournalAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.close()
	if err := j.append(journalRecord{T: "accepted", ID: "x"}); err == nil {
		t.Fatal("append after close must error")
	}
}
