package service

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/netlist"
	"repro/internal/ssta"
)

// This file is the warm what-if session layer: the interactive
// counterpart of the cold job pipeline. A client creates a session
// once — the daemon parses the circuit, binds the delay model and runs
// one full taped sweep into a persistent ssta.Inc engine — and then
// nudges gate sizes one PATCH at a time. Each nudge re-evaluates only
// the dirty cone (SetSize/Update with bitwise early cutoff), each
// what-if runs under Trial/Rollback without mutating session state,
// and each timing query reads arrivals, criticality and mu+k*sigma
// sensitivities straight off the warm tape. This is the service-side
// realization of the iterative localized-perturbation loop the
// statistical sizing literature frames gate sizing as.
//
// Warm engines are cached under an LRU with a byte budget: an evicted
// session keeps only its spec and current sizes (a few hundred bytes)
// and rebuilds transparently on the next touch — the rebuilt engine is
// bit-identical to the evicted one because the incremental contract
// pins engine state to a fresh sweep at the current sizes. Session
// creation reuses the job pipeline's admission (429/413/503) and
// fsync-before-2xx journal machinery, so a restarted daemon recovers
// its session roster (sizes reset to the baseline; the client sees
// Recovered=true and the first touch reports rebuilt=true).
//
// One Inc engine is single-threaded, so every engine operation runs
// under the session's own mutex — the per-session queue. Concurrent
// PATCHes therefore linearize: each applies its whole batch atomically
// (in sorted gate order, so a batch's internal order is deterministic
// too), and because each gate's recomputation is a pure function of
// its fanins' final arrivals, the final engine state after a set of
// disjoint PATCHes is bit-identical for every interleaving.

// Session admission errors (mapped onto HTTP statuses like the job
// pipeline's).
var (
	// ErrUnknownSession reports an unknown session ID (HTTP 404).
	ErrUnknownSession = errors.New("service: unknown session")
	// ErrSessionLimit reports a full session roster (HTTP 429).
	ErrSessionLimit = errors.New("service: session limit reached")
)

// SessionSpec is the create payload: a circuit (the same selection
// fields as JobSpec) plus model parameters, but no objective — a
// session answers timing queries, it does not run solves.
type SessionSpec struct {
	// ID optionally names the session (same rules as job IDs); empty
	// gets a generated sess-<seq> name.
	ID string `json:"id,omitempty"`
	// Circuit/Netlist/Format select the circuit exactly as in JobSpec.
	Circuit string `json:"circuit,omitempty"`
	Netlist string `json:"netlist,omitempty"`
	Format  string `json:"format,omitempty"`
	// SigmaK and Limit parameterize the delay model (defaults 0.25, 3).
	SigmaK float64 `json:"sigma_k,omitempty"`
	Limit  float64 `json:"limit,omitempty"`
	// K is the session's default risk factor for timing queries
	// (phi = mu + K*sigma; default 3). Timing requests may override it
	// per query.
	K float64 `json:"k,omitempty"`
	// Workers bounds the engine's sweep parallelism (default 1;
	// results are bit-identical for any value).
	Workers int `json:"workers,omitempty"`
}

// jobSpec adapts the session spec onto the job pipeline's model
// builder (shared circuit resolution and validation).
func (sp *SessionSpec) jobSpec() JobSpec {
	return JobSpec{
		Circuit: sp.Circuit,
		Netlist: sp.Netlist,
		Format:  sp.Format,
		SigmaK:  sp.SigmaK,
		Limit:   sp.Limit,
	}
}

// SessionStatus is the status-endpoint view of a session.
type SessionStatus struct {
	ID string `json:"id"`
	// State is "warm" (engine resident) or "evicted" (spec + sizes
	// only; the next touch rebuilds).
	State string `json:"state"`
	// Recovered marks a session restored from the journal by a daemon
	// restart; its sizes are the baseline until the client re-applies.
	Recovered bool `json:"recovered,omitempty"`
	// Rebuilds counts transparent engine rebuilds after evictions (the
	// initial build is not a rebuild).
	Rebuilds int `json:"rebuilds,omitempty"`
	// Gates is the circuit's gate count (0 until the engine has been
	// built once in this process).
	Gates int `json:"gates,omitempty"`
	// Bytes is the warm engine's estimated footprint (0 while evicted).
	Bytes    int64  `json:"bytes,omitempty"`
	Created  string `json:"created,omitempty"`
	LastUsed string `json:"last_used,omitempty"`
	// Mu/Sigma carry the circuit delay moments where the endpoint has
	// them warm (create responses).
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
}

// session is the in-memory record of one what-if session. The spec,
// sizes and engine are guarded by the session's own mutex (the
// per-session queue serializing the single-threaded Inc engine); the
// cache-management fields (eng pointer identity for the LRU, bytes,
// lastUse, closed) are guarded by the server's session-table mutex.
// Lock order: never acquire a session mutex while holding the table
// mutex — eviction only drops the table's engine reference, an
// in-flight operation keeps using its own.
type session struct {
	id        string
	seq       int
	spec      SessionSpec
	created   time.Time
	recovered bool

	mu       sync.Mutex // the per-session queue
	sizes    []float64  // current speed factors; nil = baseline (unit)
	eng      *ssta.Inc  // nil while evicted
	built    bool       // engine built at least once in this process
	gates    int
	rebuilds int

	// Guarded by Server.sessMu.
	lastUse time.Time
	bytes   int64
	closed  bool
}

// status renders the table-guarded view; callers hold sessMu.
func (ss *session) status() SessionStatus {
	st := SessionStatus{
		ID:        ss.id,
		State:     "evicted",
		Recovered: ss.recovered,
		Rebuilds:  ss.rebuilds,
		Gates:     ss.gates,
		Bytes:     ss.bytes,
		Created:   ss.created.UTC().Format(time.RFC3339Nano),
	}
	if ss.bytes > 0 {
		st.State = "warm"
	}
	if !ss.lastUse.IsZero() {
		st.LastUsed = ss.lastUse.UTC().Format(time.RFC3339Nano)
	}
	return st
}

// sessionDefaults fills the session knobs of Options.
func sessionDefaults(o Options) Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	if o.SessionBytes <= 0 {
		o.SessionBytes = 256 << 20
	}
	return o
}

// updateSessionGauges refreshes the roster gauges; callers hold sessMu.
func (s *Server) updateSessionGauges() {
	warm := 0
	for _, ss := range s.sessions {
		if ss.bytes > 0 {
			warm++
		}
	}
	s.metrics.Gauge("service.sessions.count", float64(len(s.sessions)))
	s.metrics.Gauge("service.sessions.warm", float64(warm))
	s.metrics.Gauge("service.sessions.bytes", float64(s.warmBytes))
}

// CreateSession admits one session: validate, build the warm engine,
// journal the creation (fsync) and register it. Admission mirrors job
// submission — ErrDraining 503, ErrSessionLimit 429, ErrExists 409,
// ErrTooLarge 413; other errors are 400-class spec problems.
func (s *Server) CreateSession(spec SessionSpec) (SessionStatus, error) {
	if spec.ID != "" && !validID(spec.ID) {
		return SessionStatus{}, fmt.Errorf("service: invalid session id %q (want [A-Za-z0-9._-]{1,64})", spec.ID)
	}
	js := spec.jobSpec()
	m, err := buildModel(&js)
	if err != nil {
		return SessionStatus{}, fmt.Errorf("service: bad circuit: %w", err)
	}
	gates := len(m.G.C.GateIDs())
	if s.opt.MaxGates > 0 && gates > s.opt.MaxGates {
		return SessionStatus{}, fmt.Errorf("%w: %d gates > limit %d", ErrTooLarge, gates, s.opt.MaxGates)
	}
	if s.Draining() {
		return SessionStatus{}, ErrDraining
	}

	// The expensive part — the initial full taped sweep — runs outside
	// every lock; only the registration below is serialized.
	workers := spec.Workers
	if workers <= 0 {
		workers = 1
	}
	eng := ssta.NewInc(m, m.UnitSizes(), ssta.IncOptions{Workers: workers})
	bytes := eng.MemoryBytes()

	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if s.Draining() {
		return SessionStatus{}, ErrDraining
	}
	if len(s.sessions) >= s.opt.MaxSessions {
		s.metrics.Count("service.sessions.rejected", 1)
		return SessionStatus{}, ErrSessionLimit
	}
	if spec.ID == "" {
		spec.ID = fmt.Sprintf("sess-%06d", s.sessSeq+1)
	}
	if _, dup := s.sessions[spec.ID]; dup {
		return SessionStatus{}, fmt.Errorf("%w: %q", ErrExists, spec.ID)
	}
	s.sessSeq++
	ss := &session{
		id:      spec.ID,
		seq:     s.sessSeq,
		spec:    spec,
		created: time.Now(),
		sizes:   append([]float64(nil), eng.Sizes()...),
		eng:     eng,
		built:   true,
		gates:   gates,
		lastUse: time.Now(),
		bytes:   bytes,
	}
	// The roster entry is durable before the client hears 201 — the
	// same fsync-before-2xx contract as job acceptance, so a restarted
	// daemon recovers its session roster.
	if err := s.journal.append(journalRecord{T: "session", ID: ss.id, Seq: ss.seq, Session: &ss.spec}); err != nil {
		return SessionStatus{}, err
	}
	s.sessions[ss.id] = ss
	s.sessOrder = append(s.sessOrder, ss.id)
	s.sessLRU = append(s.sessLRU, ss)
	s.warmBytes += bytes
	s.evictOverBudgetLocked(ss)
	s.metrics.Count("service.sessions.created", 1)
	s.updateSessionGauges()
	st := ss.status()
	tmax := eng.Tmax()
	st.Mu, st.Sigma = tmax.Mu, tmax.Sigma()
	return st, nil
}

// CloseSession removes a session from the roster and journals the
// closure so a restart does not resurrect it.
func (s *Server) CloseSession(id string) error {
	if s.Draining() {
		return ErrDraining
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	ss := s.sessions[id]
	if ss == nil {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	ss.closed = true
	s.dropEngineLocked(ss)
	delete(s.sessions, id)
	for i, sid := range s.sessOrder {
		if sid == id {
			s.sessOrder = append(s.sessOrder[:i], s.sessOrder[i+1:]...)
			break
		}
	}
	if err := s.journal.append(journalRecord{T: "session-closed", ID: id}); err != nil {
		return err
	}
	s.metrics.Count("service.sessions.closed", 1)
	s.updateSessionGauges()
	return nil
}

// SessionStatus returns one session's status.
func (s *Server) SessionStatus(id string) (SessionStatus, error) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	ss := s.sessions[id]
	if ss == nil {
		return SessionStatus{}, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	return ss.status(), nil
}

// Sessions lists every live session in creation order.
func (s *Server) Sessions() []SessionStatus {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	out := make([]SessionStatus, 0, len(s.sessOrder))
	for _, id := range s.sessOrder {
		out = append(out, s.sessions[id].status())
	}
	return out
}

// RecoveredSessions returns the IDs of sessions restored from the
// journal at construction, in creation order.
func (s *Server) RecoveredSessions() []string {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return append([]string(nil), s.recoveredSess...)
}

// lookupSession bumps the session in the LRU and returns it.
func (s *Server) lookupSession(id string) (*session, error) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	ss := s.sessions[id]
	if ss == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	ss.lastUse = time.Now()
	s.bumpLRULocked(ss)
	return ss, nil
}

// bumpLRULocked moves a warm session to the most-recently-used end;
// callers hold sessMu.
func (s *Server) bumpLRULocked(ss *session) {
	for i, c := range s.sessLRU {
		if c == ss {
			copy(s.sessLRU[i:], s.sessLRU[i+1:])
			s.sessLRU[len(s.sessLRU)-1] = ss
			return
		}
	}
}

// dropEngineLocked evicts a session's warm engine from the cache
// accounting; callers hold sessMu. The engine object itself may still
// be in use by an in-flight operation holding the session mutex — that
// operation keeps its own reference and finishes safely; the session's
// sizes (not the engine) are the authoritative state, so the next
// touch rebuilds bit-identically.
func (s *Server) dropEngineLocked(ss *session) {
	if ss.bytes == 0 {
		return
	}
	s.warmBytes -= ss.bytes
	ss.bytes = 0
	ss.eng = nil
	for i, c := range s.sessLRU {
		if c == ss {
			s.sessLRU = append(s.sessLRU[:i], s.sessLRU[i+1:]...)
			break
		}
	}
}

// evictOverBudgetLocked sheds least-recently-used warm engines until
// the byte budget holds, never evicting the session being touched;
// callers hold sessMu.
func (s *Server) evictOverBudgetLocked(keep *session) {
	for s.warmBytes > s.opt.SessionBytes {
		var victim *session
		for _, c := range s.sessLRU {
			if c != keep {
				victim = c
				break
			}
		}
		if victim == nil {
			return // only the touched session is warm; keep it
		}
		s.dropEngineLocked(victim)
		s.metrics.Count("service.sessions.evicted", 1)
	}
}

// reapIdleSessions evicts engines idle past the deadline (the roster
// entries stay; the next touch rebuilds). Runs from the Start reaper.
func (s *Server) reapIdleSessions(idle time.Duration) {
	cutoff := time.Now().Add(-idle)
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	for _, ss := range s.sessions {
		if ss.bytes > 0 && ss.lastUse.Before(cutoff) {
			s.dropEngineLocked(ss)
			s.metrics.Count("service.sessions.evicted", 1)
			s.metrics.Count("service.sessions.idle_evicted", 1)
		}
	}
	s.updateSessionGauges()
}

// ensureEngine returns the session's warm engine, rebuilding it from
// the spec and current sizes when evicted. The boolean reports a
// transparent rebuild (surfaced to the client as `rebuilt`). Callers
// hold the session mutex.
func (s *Server) ensureEngine(ss *session) (*ssta.Inc, bool, error) {
	s.sessMu.Lock()
	eng := ss.eng
	s.sessMu.Unlock()
	if eng != nil {
		return eng, false, nil
	}
	// Rebuild outside both locks: the incremental contract makes the
	// fresh engine at the session's current sizes bit-identical to the
	// evicted one, so the eviction is transparent to the client.
	js := ss.spec.jobSpec()
	m, err := buildModel(&js)
	if err != nil {
		return nil, false, fmt.Errorf("service: session %s rebuild: %w", ss.id, err)
	}
	sizes := ss.sizes
	if sizes == nil {
		sizes = m.UnitSizes()
	}
	workers := ss.spec.Workers
	if workers <= 0 {
		workers = 1
	}
	eng = ssta.NewInc(m, sizes, ssta.IncOptions{Workers: workers})
	bytes := eng.MemoryBytes()

	s.sessMu.Lock()
	ss.eng = eng
	ss.bytes = bytes
	ss.gates = len(m.G.C.GateIDs())
	if ss.sizes == nil {
		ss.sizes = append([]float64(nil), eng.Sizes()...)
	}
	rebuilt := ss.built || ss.recovered
	ss.built = true
	if rebuilt {
		ss.rebuilds++
	}
	s.warmBytes += bytes
	s.sessLRU = append(s.sessLRU, ss)
	s.evictOverBudgetLocked(ss)
	s.updateSessionGauges()
	s.sessMu.Unlock()
	if rebuilt {
		s.metrics.Count("service.sessions.rebuilt", 1)
	}
	return eng, rebuilt, nil
}

// resolveNudges validates a nudge batch against the engine's circuit:
// every key must name a gate and every size must be finite and
// positive (the engine itself panics on non-finite sizes — the guard
// at its API boundary — so the service rejects them with a 400 here,
// before they reach the PATCH path). The batch returns in sorted gate
// order, making the application order deterministic.
func resolveNudges(eng *ssta.Inc, sizes map[string]float64) ([]nudge, error) {
	if len(sizes) == 0 {
		return nil, errors.New("service: empty sizes map")
	}
	c := eng.Model().G.C
	out := make([]nudge, 0, len(sizes))
	for name, v := range sizes {
		id, ok := c.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("service: unknown gate %q", name)
		}
		if c.Nodes[id].Kind != netlist.KindGate {
			return nil, fmt.Errorf("service: node %q is not a gate", name)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return nil, fmt.Errorf("service: gate %q size %v is not a positive finite speed factor", name, v)
		}
		out = append(out, nudge{name: name, id: id, s: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, nil
}

// nudge is one validated (gate, size) pair of a PATCH batch.
type nudge struct {
	name string
	id   netlist.NodeID
	s    float64
}

// Moments is a rendered (mu, sigma) pair of the circuit delay.
type Moments struct {
	Mu    float64 `json:"mu"`
	Sigma float64 `json:"sigma"`
}

// NudgeReply answers a PATCH /sizes: the new circuit delay after the
// batch, plus the rebuild marker.
type NudgeReply struct {
	ID      string `json:"id"`
	Applied int    `json:"applied"`
	Rebuilt bool   `json:"rebuilt"`
	Moments
}

// SessionNudge applies a batch of size nudges to the session's warm
// engine — O(dirty cone) per batch, not O(V) — and returns the new
// circuit delay. The whole batch is atomic under the per-session
// queue.
func (s *Server) SessionNudge(id string, sizes map[string]float64) (NudgeReply, error) {
	ss, err := s.lookupSession(id)
	if err != nil {
		return NudgeReply{}, err
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	eng, rebuilt, err := s.ensureEngine(ss)
	if err != nil {
		return NudgeReply{}, err
	}
	batch, err := resolveNudges(eng, sizes)
	if err != nil {
		return NudgeReply{}, err
	}
	for _, n := range batch {
		eng.SetSize(n.id, n.s)
		ss.sizes[n.id] = n.s
	}
	tmax := eng.Update()
	s.metrics.Count("service.sessions.nudges", int64(len(batch)))
	return NudgeReply{
		ID: ss.id, Applied: len(batch), Rebuilt: rebuilt,
		Moments: Moments{Mu: tmax.Mu, Sigma: tmax.Sigma()},
	}, nil
}

// WhatIfReply answers a what-if probe: the base and trial circuit
// delays and their difference. Session state is untouched.
type WhatIfReply struct {
	ID         string  `json:"id"`
	Rebuilt    bool    `json:"rebuilt"`
	Base       Moments `json:"base"`
	Trial      Moments `json:"trial"`
	DeltaMu    float64 `json:"delta_mu"`
	DeltaSigma float64 `json:"delta_sigma"`
}

// SessionWhatIf evaluates a trial nudge batch under Trial/Rollback:
// the engine — and the session — are bitwise unchanged afterwards.
func (s *Server) SessionWhatIf(id string, sizes map[string]float64) (WhatIfReply, error) {
	ss, err := s.lookupSession(id)
	if err != nil {
		return WhatIfReply{}, err
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	eng, rebuilt, err := s.ensureEngine(ss)
	if err != nil {
		return WhatIfReply{}, err
	}
	batch, err := resolveNudges(eng, sizes)
	if err != nil {
		return WhatIfReply{}, err
	}
	base := eng.Update()
	eng.Trial()
	for _, n := range batch {
		eng.SetSize(n.id, n.s)
	}
	trial := eng.Update()
	eng.Rollback()
	s.metrics.Count("service.sessions.whatifs", 1)
	return WhatIfReply{
		ID: ss.id, Rebuilt: rebuilt,
		Base:       Moments{Mu: base.Mu, Sigma: base.Sigma()},
		Trial:      Moments{Mu: trial.Mu, Sigma: trial.Sigma()},
		DeltaMu:    trial.Mu - base.Mu,
		DeltaSigma: trial.Sigma() - base.Sigma(),
	}, nil
}

// OutputTiming is one primary output's arrival moments.
type OutputTiming struct {
	Name  string  `json:"name"`
	Mu    float64 `json:"mu"`
	Sigma float64 `json:"sigma"`
}

// GateTiming is one gate's criticality and sensitivity row.
type GateTiming struct {
	Gate string `json:"gate"`
	// Criticality is d muTmax / d mu_t — the statistical critical-path
	// membership weight in [0, 1].
	Criticality float64 `json:"criticality"`
	// Sensitivity is d(mu + k*sigma)/dS — the gradient the sizing loop
	// ranks moves by.
	Sensitivity float64 `json:"sensitivity"`
	Size        float64 `json:"size"`
}

// TimingReply answers a timing query from the warm engine.
type TimingReply struct {
	ID      string  `json:"id"`
	Rebuilt bool    `json:"rebuilt"`
	K       float64 `json:"k"`
	Moments
	// Phi is mu + k*sigma of the circuit delay.
	Phi float64 `json:"phi"`
	// Outputs lists every primary output's arrival moments.
	Outputs []OutputTiming `json:"outputs"`
	// Critical lists the top gates by criticality (all gates when the
	// query asks top=0), ties broken by node id for determinism.
	Critical []GateTiming `json:"critical"`
}

// SessionTiming reads the session's current timing view: circuit
// delay moments, per-output arrivals, and per-gate criticality plus
// mu+k*sigma sensitivities — all from the warm tape, no fresh sweep.
// top bounds the Critical list (<= 0 returns every gate).
func (s *Server) SessionTiming(id string, k float64, top int) (TimingReply, error) {
	if math.IsNaN(k) || math.IsInf(k, 0) {
		return TimingReply{}, fmt.Errorf("service: risk factor k=%v is not finite", k)
	}
	ss, err := s.lookupSession(id)
	if err != nil {
		return TimingReply{}, err
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	eng, rebuilt, err := s.ensureEngine(ss)
	if err != nil {
		return TimingReply{}, err
	}
	if k == 0 {
		k = ss.spec.K
	}
	if k == 0 {
		k = 3
	}
	tmax := eng.Update()
	phi, grad := eng.GradMuPlusKSigma(k)
	m := eng.Model()
	gates := m.G.C.GateIDs()
	rows := make([]GateTiming, 0, len(gates))
	for _, g := range gates {
		rows = append(rows, GateTiming{
			Gate:        m.G.C.Nodes[g].Name,
			Sensitivity: grad[g],
			Size:        eng.Sizes()[g],
		})
	}
	// grad is engine-owned scratch; the adjoint pass below overwrites
	// it, so the sensitivities were copied into rows first.
	crit := eng.Criticality()
	for i, g := range gates {
		rows[i].Criticality = crit[g]
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Criticality != rows[j].Criticality {
			return rows[i].Criticality > rows[j].Criticality
		}
		return rows[i].Gate < rows[j].Gate
	})
	if top > 0 && top < len(rows) {
		rows = rows[:top]
	}
	outs := make([]OutputTiming, 0, len(m.G.C.Outputs))
	for _, o := range m.G.C.Outputs {
		arr := eng.Arrival(o)
		outs = append(outs, OutputTiming{Name: m.G.C.Nodes[o].Name, Mu: arr.Mu, Sigma: arr.Sigma()})
	}
	s.metrics.Count("service.sessions.timing", 1)
	return TimingReply{
		ID: ss.id, Rebuilt: rebuilt, K: k,
		Moments:  Moments{Mu: tmax.Mu, Sigma: tmax.Sigma()},
		Phi:      phi,
		Outputs:  outs,
		Critical: rows,
	}, nil
}
