package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"time"
)

// The session bench harness is the acceptance evidence for the warm
// what-if session tentpole: the same single-gate timing query served
// three ways over real HTTP —
//
//	warm nudge    PATCH on a long-lived session: O(dirty cone) on the
//	              resident incremental engine
//	cold session  create + nudge + close per query: a full parse +
//	              analyze each time, no solve pipeline
//	cold job      the pre-session baseline: submit a minimal solve job
//	              and poll it to terminal (parse + analyze + journal
//	              fsyncs + scheduling + poll)
//
// The acceptance criterion is warm ≥ 10× faster than the cold job at
// the median; the report lands in BENCH_session.json.

// SessionBenchOptions configures the harness.
type SessionBenchOptions struct {
	// Circuit is the benchmark workload (default "k2", 1692 gates —
	// the paper's largest Table 1 circuit).
	Circuit string
	// WarmNudges is the number of warm single-gate PATCHes (default 300).
	WarmNudges int
	// ColdJobs is the number of submit-and-poll baseline jobs
	// (default 20).
	ColdJobs int
	// ColdSessions is the number of create+nudge+close round trips
	// (default 20).
	ColdSessions int
	// Timeout bounds the whole run (default 120s).
	Timeout time.Duration
}

func (o SessionBenchOptions) withDefaults() SessionBenchOptions {
	if o.Circuit == "" {
		o.Circuit = "k2"
	}
	if o.WarmNudges <= 0 {
		o.WarmNudges = 300
	}
	if o.ColdJobs <= 0 {
		o.ColdJobs = 20
	}
	if o.ColdSessions <= 0 {
		o.ColdSessions = 20
	}
	if o.Timeout <= 0 {
		o.Timeout = 120 * time.Second
	}
	return o
}

// LatencySummary condenses one latency population, in milliseconds.
type LatencySummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
}

func summarize(ms []float64) LatencySummary {
	s := LatencySummary{Count: len(ms)}
	if len(ms) == 0 {
		return s
	}
	sort.Float64s(ms)
	s.P50 = quantileMS(ms, 0.50)
	s.P90 = quantileMS(ms, 0.90)
	s.P99 = quantileMS(ms, 0.99)
	s.Max = ms[len(ms)-1]
	sum := 0.0
	for _, v := range ms {
		sum += v
	}
	s.Mean = sum / float64(len(ms))
	return s
}

// SessionBenchReport is the harness result, serialized into
// BENCH_session.json by cmd/sizingd -sessionbench and make
// bench-session.
type SessionBenchReport struct {
	Config struct {
		Circuit      string `json:"circuit"`
		Gates        int    `json:"gates"`
		WarmNudges   int    `json:"warm_nudges"`
		ColdJobs     int    `json:"cold_jobs"`
		ColdSessions int    `json:"cold_sessions"`
	} `json:"config"`
	// WarmNudgeMS is the PATCH round-trip latency on the warm session.
	WarmNudgeMS LatencySummary `json:"warm_nudge_ms"`
	// ColdSessionMS is create+nudge+close per query.
	ColdSessionMS LatencySummary `json:"cold_session_ms"`
	// ColdJobMS is submit-and-poll-to-terminal per query.
	ColdJobMS LatencySummary `json:"cold_job_ms"`
	// Speedups are cold-job latency over warm-nudge latency — the
	// tentpole's acceptance number (>= 10 required at the median).
	SpeedupP50  float64 `json:"speedup_cold_job_over_warm_p50"`
	SpeedupMean float64 `json:"speedup_cold_job_over_warm_mean"`
	// SessionSpeedupP50 is cold-session over warm-nudge at the median.
	SessionSpeedupP50 float64 `json:"speedup_cold_session_over_warm_p50"`
	WallMS            int64   `json:"wall_ms"`
}

// benchClient wraps one JSON round trip with latency capture.
type benchClient struct {
	base   string
	client *http.Client
}

func (c *benchClient) do(ctx context.Context, method, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// RunSessionBench boots a daemon in-process, measures the three query
// paths and returns the report. An error means the harness failed
// (non-2xx, timeout), not a slow result — except the final acceptance
// check: a warm path slower than a tenth of the cold-job path fails
// loudly, because that is the tentpole's contract.
func RunSessionBench(opt SessionBenchOptions) (*SessionBenchReport, error) {
	opt = opt.withDefaults()
	dir, err := os.MkdirTemp("", "sizingd-sessbench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	srv, err := New(Options{StateDir: dir, Pool: 2})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Kill()
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Drain(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), opt.Timeout)
	defer cancel()
	bc := &benchClient{base: "http://" + ln.Addr().String(), client: &http.Client{Timeout: 15 * time.Second}}
	start := time.Now()

	rep := &SessionBenchReport{}
	rep.Config.Circuit = opt.Circuit
	rep.Config.WarmNudges = opt.WarmNudges
	rep.Config.ColdJobs = opt.ColdJobs
	rep.Config.ColdSessions = opt.ColdSessions

	// Warm path: one session, WarmNudges single-gate PATCHes cycling a
	// few gates through alternating speed factors.
	var st SessionStatus
	code, err := bc.do(ctx, http.MethodPost, "/v1/sessions", SessionSpec{ID: "bench-warm", Circuit: opt.Circuit}, &st)
	if err != nil || code != http.StatusCreated {
		return nil, fmt.Errorf("sessionbench: warm create: HTTP %d, %v", code, err)
	}
	rep.Config.Gates = st.Gates
	warm := make([]float64, 0, opt.WarmNudges)
	for i := 0; i < opt.WarmNudges; i++ {
		gate := fmt.Sprintf("g%d", i%16)
		size := 1.0 + float64(i%2)*0.5
		t0 := time.Now()
		var nr NudgeReply
		code, err := bc.do(ctx, http.MethodPatch, "/v1/sessions/bench-warm/sizes",
			sizesBody{Sizes: map[string]float64{gate: size}}, &nr)
		if err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("sessionbench: warm nudge %d: HTTP %d, %v", i, code, err)
		}
		warm = append(warm, float64(time.Since(t0).Microseconds())/1000)
	}
	rep.WarmNudgeMS = summarize(warm)

	// Cold-session path: pay the parse + full analyze on every query.
	coldSess := make([]float64, 0, opt.ColdSessions)
	for i := 0; i < opt.ColdSessions; i++ {
		id := fmt.Sprintf("bench-cs-%03d", i)
		t0 := time.Now()
		if code, err := bc.do(ctx, http.MethodPost, "/v1/sessions", SessionSpec{ID: id, Circuit: opt.Circuit}, nil); err != nil || code != http.StatusCreated {
			return nil, fmt.Errorf("sessionbench: cold session create: HTTP %d, %v", code, err)
		}
		if code, err := bc.do(ctx, http.MethodPatch, "/v1/sessions/"+id+"/sizes",
			sizesBody{Sizes: map[string]float64{"g0": 1.5}}, nil); err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("sessionbench: cold session nudge: HTTP %d, %v", code, err)
		}
		if code, err := bc.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil); err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("sessionbench: cold session close: HTTP %d, %v", code, err)
		}
		coldSess = append(coldSess, float64(time.Since(t0).Microseconds())/1000)
	}
	rep.ColdSessionMS = summarize(coldSess)

	// Cold-job path: the pre-session baseline for "what is the timing
	// after this one nudge" — a minimal solve job (greedy area under a
	// deadline the baseline already meets) submitted and polled to
	// terminal.
	coldJob := make([]float64, 0, opt.ColdJobs)
	for i := 0; i < opt.ColdJobs; i++ {
		id := fmt.Sprintf("bench-cj-%03d", i)
		spec := JobSpec{
			ID:          id,
			Circuit:     opt.Circuit,
			Objective:   "area",
			Constraints: []string{"mu+3sigma<=1e9"},
		}
		t0 := time.Now()
		if code, err := bc.do(ctx, http.MethodPost, "/v1/jobs", spec, nil); err != nil || code != http.StatusAccepted {
			return nil, fmt.Errorf("sessionbench: cold job submit: HTTP %d, %v", code, err)
		}
		for {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sessionbench: cold job %s: %w", id, err)
			}
			var jst JobStatus
			code, err := bc.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &jst)
			if err != nil || code != http.StatusOK {
				return nil, fmt.Errorf("sessionbench: cold job poll: HTTP %d, %v", code, err)
			}
			if jst.State == "done" {
				break
			}
			if jst.State == "failed" || jst.State == "cancelled" {
				return nil, fmt.Errorf("sessionbench: cold job %s ended %s", id, jst.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
		coldJob = append(coldJob, float64(time.Since(t0).Microseconds())/1000)
	}
	rep.ColdJobMS = summarize(coldJob)

	rep.WallMS = time.Since(start).Milliseconds()
	if rep.WarmNudgeMS.P50 > 0 {
		rep.SpeedupP50 = rep.ColdJobMS.P50 / rep.WarmNudgeMS.P50
		rep.SessionSpeedupP50 = rep.ColdSessionMS.P50 / rep.WarmNudgeMS.P50
	}
	if rep.WarmNudgeMS.Mean > 0 {
		rep.SpeedupMean = rep.ColdJobMS.Mean / rep.WarmNudgeMS.Mean
	}
	if rep.SpeedupP50 < 10 {
		return rep, fmt.Errorf("sessionbench: warm nudge p50 %.3fms is only %.1fx faster than the cold job p50 %.3fms (acceptance requires >= 10x)",
			rep.WarmNudgeMS.P50, rep.SpeedupP50, rep.ColdJobMS.P50)
	}
	return rep, nil
}

// WriteSessionBench writes the report as indented JSON to path.
func WriteSessionBench(path string, rep *SessionBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
