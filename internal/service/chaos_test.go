package service

import (
	"context"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/nlp"
)

// chaos_test pins the crash-recovery acceptance criteria of the
// service tentpole:
//
//   - a daemon SIGKILL'd mid-solve (Server.Kill: contexts cancelled,
//     nothing flushed beyond the journal and checkpoints already on
//     disk) restarts, resumes the interrupted job from its checkpoint
//     and finishes with a result bit-identical to an uninterrupted
//     run;
//   - a graceful drain loses zero accepted jobs: queued and cancelled-
//     at-deadline jobs all complete after a restart;
//   - a torn journal tail (crash mid-append) does not block recovery.

// holdWrap wraps the problem's first objective element so its Eval
// blocks on the hold channel at per-element call fireAt, closing held
// first — the hook that parks a solve mid-flight for the kill to land
// on. Calls are counted across attempts and incarnations of the
// wrapper (the counter lives outside), firing once.
type holdSeam struct {
	mu     sync.Mutex
	calls  int
	fireAt int
	fired  bool
	held   chan struct{}
	hold   chan struct{}
}

func (h *holdSeam) wrap(p *nlp.Problem) *nlp.Problem {
	q := *p
	q.Objective = append([]nlp.Element(nil), p.Objective...)
	inner := q.Objective[0].Eval
	q.Objective[0].Eval = func(x []float64) float64 {
		h.mu.Lock()
		h.calls++
		fire := h.calls >= h.fireAt && !h.fired
		if fire {
			h.fired = true
		}
		h.mu.Unlock()
		if fire {
			close(h.held)
			<-h.hold
		}
		return inner(x)
	}
	return &q
}

// runReference solves the spec uninterrupted on a throwaway server
// and returns its terminal result.
func runReference(t *testing.T, spec JobSpec) *JobResult {
	t.Helper()
	srv, err := New(Options{StateDir: t.TempDir(), Pool: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	if _, err := srv.Submit(spec); err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, srv, spec.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv.Drain(ctx)
	return res
}

// waitResult polls the server API (not HTTP) to a terminal result.
func waitResult(t *testing.T, srv *Server, id string) *JobResult {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		res, done, err := srv.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return res
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

func TestKillMidSolveRecoversBitIdentical(t *testing.T) {
	spec := deadlineSpec("chaos")

	// Reference: the uninterrupted run.
	ref := runReference(t, spec)
	if ref.StatusCode != int(nlp.Stalled) && ref.StatusCode != int(nlp.Converged) {
		t.Fatalf("reference run ended %q — pick a spec with a clean finish", ref.Status)
	}
	if ref.FuncEvals < 8 {
		t.Fatalf("reference run too short (%d merit evals) to kill mid-solve", ref.FuncEvals)
	}

	// Incarnation 1: park the solve halfway through its merit evals,
	// then kill the daemon while it hangs there.
	dir := t.TempDir()
	seam := &holdSeam{
		fireAt: ref.FuncEvals / 2,
		held:   make(chan struct{}),
		hold:   make(chan struct{}),
	}
	srv1, err := New(Options{StateDir: dir, Pool: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv1.testWrap = func(id string, attempt int, p *nlp.Problem) *nlp.Problem {
		return seam.wrap(p)
	}
	srv1.Start()
	if _, err := srv1.Submit(spec); err != nil {
		t.Fatal(err)
	}
	<-seam.held
	killDone := make(chan struct{})
	go func() {
		srv1.Kill()
		close(killDone)
	}()
	// Give Kill a beat to cancel the job context, then release the
	// parked element; the solver observes the cancellation at its next
	// boundary and persists the checkpoint.
	time.Sleep(50 * time.Millisecond)
	close(seam.hold)
	<-killDone

	// The "dead" process left a journal acceptance and (solve
	// permitting) a checkpoint; nothing terminal.
	if _, err := os.Stat(srv1.checkpointPath("chaos")); err != nil {
		t.Fatalf("killed daemon left no checkpoint: %v", err)
	}

	// Incarnation 2: plain restart on the same state directory.
	srv2, err := New(Options{StateDir: dir, Pool: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := srv2.Recovered()
	if len(rec) != 1 || rec[0] != "chaos" {
		t.Fatalf("recovered %v, want [chaos]", rec)
	}
	srv2.Start()
	got := waitResult(t, srv2, "chaos")

	// The acceptance contract: every deterministic field matches the
	// uninterrupted run exactly — bit-identical sizes included.
	if !got.Recovered {
		t.Fatal("recovered job not flagged Recovered")
	}
	if len(got.S) != len(ref.S) {
		t.Fatalf("sizes: %d vs %d entries", len(got.S), len(ref.S))
	}
	for i := range ref.S {
		if got.S[i] != ref.S[i] {
			t.Fatalf("S[%d] differs after recovery: %v vs %v", i, got.S[i], ref.S[i])
		}
	}
	if got.Mu != ref.Mu || got.Sigma != ref.Sigma || got.Area != ref.Area {
		t.Fatalf("moments differ: got (%v,%v,%v) want (%v,%v,%v)",
			got.Mu, got.Sigma, got.Area, ref.Mu, ref.Sigma, ref.Area)
	}
	if got.Status != ref.Status || got.Method != ref.Method {
		t.Fatalf("status/method differ: %q/%q vs %q/%q", got.Status, got.Method, ref.Status, ref.Method)
	}
	if got.Outer != ref.Outer || got.Inner != ref.Inner || got.FuncEvals != ref.FuncEvals {
		t.Fatalf("counters differ: (%d,%d,%d) vs (%d,%d,%d)",
			got.Outer, got.Inner, got.FuncEvals, ref.Outer, ref.Inner, ref.FuncEvals)
	}
	if n := srv2.Metrics().CounterValue("service.jobs.recovered"); n != 1 {
		t.Fatalf("recovered counter %d, want 1", n)
	}

	// The resumed run really resumed: its event stream replays only
	// the outer iterations after the checkpoint, not the whole solve.
	srv2.mu.Lock()
	hist, _ := srv2.jobs["chaos"].hub.subscribe()
	srv2.mu.Unlock()
	outers := 0
	for _, ev := range hist {
		if strings.Contains(ev, `"scope":"alm","name":"outer"`) {
			outers++
		}
	}
	if outers == 0 || outers >= ref.Outer {
		t.Fatalf("resumed incarnation replayed %d outer events (reference ran %d) — expected a partial resume", outers, ref.Outer)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv2.Drain(ctx)
}

func TestDrainLosesNoAcceptedJobs(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{StateDir: dir, Pool: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	srv.testSolveDelay = func(string, int) { <-hold }
	srv.Start()

	ids := []string{"d1", "d2", "d3", "d4"}
	for _, id := range ids {
		if _, err := srv.Submit(deadlineSpec(id)); err != nil {
			t.Fatal(err)
		}
	}
	waitStateDirect(t, srv, "d1", JobRunning)

	// Drain with a deadline the held job cannot meet: phase 2 cancels
	// it at the boundary; the three queued jobs never start.
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		drainDone <- srv.Drain(ctx)
	}()
	// Let the drain deadline pass (phase 2 fires the cancellation),
	// then release the held solve so it can observe it.
	time.Sleep(300 * time.Millisecond)
	close(hold)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := srv.Metrics().CounterValue("service.jobs.drained"); n != 4 {
		t.Fatalf("drained counter %d, want 4 (1 running + 3 queued)", n)
	}

	// Restart: every accepted job must recover and complete. Zero
	// loss, the drain acceptance criterion.
	srv2, err := New(Options{StateDir: dir, Pool: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rec := srv2.Recovered(); len(rec) != len(ids) {
		t.Fatalf("recovered %v, want all of %v", rec, ids)
	}
	srv2.Start()
	for _, id := range ids {
		res := waitResult(t, srv2, id)
		if res == nil || len(res.S) == 0 {
			t.Fatalf("job %s recovered without a result", id)
		}
		if !res.Recovered {
			t.Fatalf("job %s not flagged Recovered", id)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv2.Drain(ctx)
}

// waitStateDirect is waitState without the HTTP layer.
func waitStateDirect(t *testing.T, srv *Server, id string, want JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := srv.Status(id)
		if err == nil && st.State == want.String() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
}

func TestRestartToleratesTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{StateDir: dir, Pool: 1})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	srv.testSolveDelay = func(string, int) { <-hold }
	srv.Start()
	if _, err := srv.Submit(deadlineSpec("torn")); err != nil {
		t.Fatal(err)
	}
	waitStateDirect(t, srv, "torn", JobRunning)
	killDone := make(chan struct{})
	go func() {
		srv.Kill()
		close(killDone)
	}()
	time.Sleep(20 * time.Millisecond)
	close(hold)
	<-killDone

	// Simulate the crash tearing the final journal record.
	writeTorn(t, dir+"/journal.jsonl", `{"t":"done","id":"torn","state":"do`)

	srv2, err := New(Options{StateDir: dir, Pool: 1})
	if err != nil {
		t.Fatalf("restart with torn tail: %v", err)
	}
	if rec := srv2.Recovered(); len(rec) != 1 || rec[0] != "torn" {
		t.Fatalf("recovered %v, want [torn]", rec)
	}
	srv2.Start()
	res := waitResult(t, srv2, "torn")
	if len(res.S) == 0 {
		t.Fatal("recovered job produced no sizing")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv2.Drain(ctx)
}

func TestKillBeforeStartRecoversQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{StateDir: dir, Pool: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	// No Start: jobs are accepted and journaled but never run — the
	// daemon dies before its workers pick anything up.
	for _, id := range []string{"q1", "q2"} {
		if _, err := srv.Submit(deadlineSpec(id)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Kill()

	srv2, err := New(Options{StateDir: dir, Pool: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec := srv2.Recovered(); len(rec) != 2 {
		t.Fatalf("recovered %v, want both queued jobs", rec)
	}
	srv2.Start()
	for _, id := range []string{"q1", "q2"} {
		waitResult(t, srv2, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv2.Drain(ctx)
}
