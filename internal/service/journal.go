package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// The journal is the daemon's accepted-work ledger: an append-only
// JSONL file in the state directory, fsynced per record. A job is
// "accepted" exactly when its acceptance record is durable — the
// submit handler journals before it answers 202 — so a SIGKILL at any
// later moment cannot lose the job: the next start replays the
// journal, finds acceptances without a terminal record, and requeues
// them (resuming from their checkpoint files when one exists).
//
// Record types:
//
//	{"t":"accepted","id":...,"seq":n,"spec":{...}}   job admitted
//	{"t":"done","id":...,"state":"done|failed|cancelled","result":{...}}
//	{"t":"session","id":...,"seq":n,"session":{...}} session created
//	{"t":"session-closed","id":...}                  session deleted
//
// Only session *creation* is journaled, not every nudge: a restarted
// daemon recovers its session roster (so clients' session handles keep
// working) with sizes reset to the baseline, surfaced to the client as
// Recovered=true plus rebuilt=true on the first touch.
//
// A crash can tear at most the final record (appends are a single
// write); replay therefore tolerates a malformed *last* line and
// fails loudly on malformed interior lines, which indicate real
// corruption rather than a torn tail.

// journalRecord is one line of the ledger.
type journalRecord struct {
	T     string     `json:"t"`
	ID    string     `json:"id"`
	Seq   int        `json:"seq,omitempty"`
	Spec  *JobSpec   `json:"spec,omitempty"`
	State string     `json:"state,omitempty"`
	Error string     `json:"error,omitempty"`
	Res   *JobResult `json:"result,omitempty"`
	// Session carries the spec of a "session" record.
	Session *SessionSpec `json:"session,omitempty"`
}

// journal is the open ledger file.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// openJournal replays the ledger at path (missing file = empty) and
// opens it for appending.
func openJournal(path string) (*journal, []journalRecord, error) {
	recs, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: journal: %w", err)
	}
	return &journal{f: f, path: path}, recs, nil
}

// replayJournal parses every record, tolerating a torn final line.
func replayJournal(path string) ([]journalRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	defer f.Close()
	var recs []journalRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		if pendingErr != nil {
			// The malformed line had records after it: interior
			// corruption, not a torn tail.
			return nil, pendingErr
		}
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var r journalRecord
		if err := json.Unmarshal(text, &r); err != nil {
			pendingErr = fmt.Errorf("service: journal %s:%d: %w", path, line, err)
			continue
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: journal %s: %w", path, err)
	}
	return recs, nil
}

// append marshals, writes and fsyncs one record.
func (j *journal) append(r journalRecord) error {
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("service: journal: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("service: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("service: journal: %w", err)
	}
	// Durability is the point: the acceptance record must survive a
	// SIGKILL the instant after the client sees 202.
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("service: journal: %w", err)
	}
	return nil
}

// close stops further appends.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("service: journal: %w", err)
	}
	return nil
}
