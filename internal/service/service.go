// Package service is the sizing-as-a-service daemon core: an HTTP/JSON
// front end over the solver stack that accepts netlists plus sizing
// specs and runs each solve under a full supervision stack —
//
//	admission   a bounded worker pool with a bounded queue; a full
//	            queue rejects with 429 + Retry-After, oversized
//	            circuits with 413, a draining daemon with 503. A job
//	            is accepted exactly when its spec is fsynced into the
//	            state directory's journal, *before* the client sees
//	            202, so an accepted job can never be lost.
//	supervision every solve runs under a per-job context deadline
//	            threaded through the whole stack (nlp.SolveCtx /
//	            sizing.SizeCtx), with per-outer-iteration checkpoints
//	            persisted to the state directory, a telemetry watchdog
//	            marking (optionally cancelling) stalled solves, and
//	            automatic retry-with-backoff for NumericalFailure —
//	            each retry resumes from the job's last checkpoint and
//	            steps the degradation ladder down one rung.
//	recovery    a restarted daemon replays the journal: acceptances
//	            without a terminal record are requeued and resumed
//	            from their checkpoint files. Checkpoint resume is
//	            bit-identical (the internal/checkpoint contract), so
//	            a SIGKILL'd daemon finishes interrupted jobs with
//	            exactly the result an uninterrupted run would have
//	            produced — the chaos acceptance test pins this.
//	drain       SIGTERM (or Drain) stops admission, lets running jobs
//	            reach a result within the drain deadline, then
//	            cancels the stragglers at a checkpoint boundary; the
//	            journal keeps their acceptance, so nothing is lost
//	            across the restart.
//
// Clients follow a job through submit/status/result/cancel endpoints,
// a Server-Sent-Events stream of the solver's outer-loop convergence
// ("alm.outer"), and the Prometheus metrics the daemon exposes
// (accepted/rejected/retried/recovered/drained per-job counters plus
// the whole telemetry histogram stack).
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/nlp"
	"repro/internal/telemetry"
)

// Admission errors, mapped onto HTTP statuses by the handler.
var (
	// ErrQueueFull reports a full admission queue (HTTP 429).
	ErrQueueFull = errors.New("service: queue full")
	// ErrDraining reports a daemon that stopped admitting (HTTP 503).
	ErrDraining = errors.New("service: draining")
	// ErrExists reports a duplicate job ID (HTTP 409).
	ErrExists = errors.New("service: job id exists")
	// ErrTooLarge reports a circuit over the admission size limit
	// (HTTP 413).
	ErrTooLarge = errors.New("service: circuit too large")
	// ErrUnknownJob reports an unknown job ID (HTTP 404).
	ErrUnknownJob = errors.New("service: unknown job")
)

// Options configures a Server. StateDir is required; everything else
// has production defaults.
type Options struct {
	// StateDir holds the journal and the per-job checkpoint files. It
	// is created if missing. Two live servers must not share one.
	StateDir string
	// Pool is the number of concurrent solves (default 2).
	Pool int
	// QueueDepth bounds the jobs admitted but not yet running; a full
	// queue rejects new submissions (default 16).
	QueueDepth int
	// MaxRetries bounds the NumericalFailure retries per job
	// (default 2).
	MaxRetries int
	// RetryBackoff is the first retry's delay, doubling per retry
	// (default 250ms).
	RetryBackoff time.Duration
	// JobTimeout caps each job's wall clock per process; a job's own
	// timeout_ms is clamped to it. 0 = no cap.
	JobTimeout time.Duration
	// DrainTimeout bounds Drain when its context has no deadline
	// (default 30s).
	DrainTimeout time.Duration
	// MaxGates rejects circuits with more gates at admission
	// (0 = unlimited).
	MaxGates int
	// CancelOnStall cancels a job after this many watchdog stall
	// episodes (0 = record stalls without cancelling).
	CancelOnStall int
	// MaxSessions bounds the what-if session roster; a full roster
	// rejects creates with 429 (default 64).
	MaxSessions int
	// SessionBytes budgets the warm session engines' memory; least-
	// recently-used engines are evicted past it and rebuild
	// transparently on the next touch (default 256 MiB).
	SessionBytes int64
	// SessionIdleTimeout evicts a session's warm engine after this much
	// inactivity (the roster entry stays; 0 = never).
	SessionIdleTimeout time.Duration
	// Recorder, when non-nil, receives every job's solver telemetry in
	// addition to the server's own metrics sink.
	Recorder telemetry.Recorder
	// Metrics is the server's metrics sink; nil creates a private one.
	// It backs the /metrics Prometheus exposition and the service.*
	// counters.
	Metrics *telemetry.Metrics
}

func (o Options) withDefaults() Options {
	if o.Pool <= 0 {
		o.Pool = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 250 * time.Millisecond
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	if o.Metrics == nil {
		o.Metrics = telemetry.NewMetrics()
	}
	return sessionDefaults(o)
}

// Server is the daemon core. Create with New, start the worker pool
// with Start, mount Handler on an HTTP listener, stop with Drain (or
// abandon with Kill in chaos tests).
type Server struct {
	opt     Options
	metrics *telemetry.Metrics
	journal *journal

	baseCtx context.Context
	stopAll context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	jobs      map[string]*job
	order     []string // submission order, for listing
	pending   []*job   // admission queue (FIFO)
	running   int
	seq       int
	draining  bool
	killed    bool
	stopped   bool // workers told to exit
	recovered []*job

	// The what-if session table (session.go). sessMu guards the roster,
	// the LRU and the warm-byte accounting; each session's engine runs
	// under its own per-session mutex. Lock order: a session mutex is
	// never acquired while sessMu is held.
	sessMu        sync.Mutex
	sessions      map[string]*session
	sessOrder     []string   // creation order, for listing
	sessLRU       []*session // warm engines, least recently used first
	warmBytes     int64
	sessSeq       int
	recoveredSess []string

	workers sync.WaitGroup

	// testWrap, when non-nil, wraps each attempt's NLP problem — the
	// deterministic fault-injection seam the chaos tests script with
	// internal/faults (attempt is 0-based within this process).
	testWrap func(id string, attempt int, p *nlp.Problem) *nlp.Problem
	// testSolveDelay, when non-nil, is called at the top of every
	// solve attempt — chaos tests use it to hold a solve mid-flight.
	testSolveDelay func(id string, attempt int)
}

// New builds a server over the state directory, replaying the journal.
// Jobs accepted by an earlier process but missing a terminal record
// are requeued (state "queued", Recovered=true) and resume from their
// checkpoint files once Start runs the pool.
func New(opt Options) (*Server, error) {
	if opt.StateDir == "" {
		return nil, fmt.Errorf("service: Options.StateDir is required")
	}
	opt = opt.withDefaults()
	if err := os.MkdirAll(opt.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	jnl, recs, err := openJournal(filepath.Join(opt.StateDir, "journal.jsonl"))
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:      opt,
		metrics:  opt.Metrics,
		journal:  jnl,
		baseCtx:  ctx,
		stopAll:  cancel,
		jobs:     make(map[string]*job),
		sessions: make(map[string]*session),
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(recs); err != nil {
		jnl.close()
		cancel()
		return nil, err
	}
	return s, nil
}

// recover rebuilds the job table from replayed journal records.
func (s *Server) recover(recs []journalRecord) error {
	for i := range recs {
		r := &recs[i]
		switch r.T {
		case "accepted":
			if r.Spec == nil || r.ID == "" {
				return fmt.Errorf("service: journal acceptance for %q lacks a spec", r.ID)
			}
			if _, dup := s.jobs[r.ID]; dup {
				return fmt.Errorf("service: journal accepts job %q twice", r.ID)
			}
			jb := &job{
				id:        r.ID,
				seq:       r.Seq,
				spec:      *r.Spec,
				state:     JobQueued,
				recovered: true,
				hub:       newEventHub(),
			}
			if r.Seq > s.seq {
				s.seq = r.Seq
			}
			s.jobs[r.ID] = jb
			s.order = append(s.order, r.ID)
		case "done":
			jb := s.jobs[r.ID]
			if jb == nil {
				return fmt.Errorf("service: journal completes unknown job %q", r.ID)
			}
			switch r.State {
			case "done":
				jb.state = JobDone
			case "failed":
				jb.state = JobFailed
			case "cancelled":
				jb.state = JobCancelled
			default:
				return fmt.Errorf("service: journal job %q has unknown terminal state %q", r.ID, r.State)
			}
			jb.result = r.Res
			jb.errMsg = r.Error
			jb.hub.close()
		case "session":
			if r.Session == nil || r.ID == "" {
				return fmt.Errorf("service: journal session record for %q lacks a spec", r.ID)
			}
			if _, dup := s.sessions[r.ID]; dup {
				return fmt.Errorf("service: journal creates session %q twice", r.ID)
			}
			// Recovered sessions come back evicted: spec only, baseline
			// sizes, engine rebuilt on the first touch (Recovered=true
			// tells the client its nudges did not survive the restart).
			s.sessions[r.ID] = &session{
				id:        r.ID,
				seq:       r.Seq,
				spec:      *r.Session,
				created:   time.Now(),
				recovered: true,
			}
			s.sessOrder = append(s.sessOrder, r.ID)
			if r.Seq > s.sessSeq {
				s.sessSeq = r.Seq
			}
		case "session-closed":
			ss := s.sessions[r.ID]
			if ss == nil {
				return fmt.Errorf("service: journal closes unknown session %q", r.ID)
			}
			delete(s.sessions, r.ID)
			for i, sid := range s.sessOrder {
				if sid == r.ID {
					s.sessOrder = append(s.sessOrder[:i], s.sessOrder[i+1:]...)
					break
				}
			}
		default:
			return fmt.Errorf("service: journal record type %q unknown", r.T)
		}
	}
	// Requeue survivors in acceptance order.
	for _, id := range s.order {
		jb := s.jobs[id]
		if jb.state == JobQueued {
			s.pending = append(s.pending, jb)
			s.recovered = append(s.recovered, jb)
			s.metrics.Count("service.jobs.recovered", 1)
		}
	}
	for _, id := range s.sessOrder {
		s.recoveredSess = append(s.recoveredSess, id)
		s.metrics.Count("service.sessions.recovered", 1)
	}
	return nil
}

// Recovered returns the IDs of jobs requeued from the journal at
// construction, in acceptance order.
func (s *Server) Recovered() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, len(s.recovered))
	for i, jb := range s.recovered {
		ids[i] = jb.id
	}
	return ids
}

// Metrics returns the server's telemetry sink.
func (s *Server) Metrics() *telemetry.Metrics { return s.metrics }

// Start launches the worker pool (and, when configured, the session
// idle reaper). It returns immediately; recovered jobs are already
// queued and run first.
func (s *Server) Start() {
	s.workers.Add(s.opt.Pool)
	for i := 0; i < s.opt.Pool; i++ {
		go func() {
			defer s.workers.Done()
			for {
				jb := s.nextJob()
				if jb == nil {
					return
				}
				s.runJob(jb)
			}
		}()
	}
	if idle := s.opt.SessionIdleTimeout; idle > 0 {
		tick := idle / 4
		if tick < 100*time.Millisecond {
			tick = 100 * time.Millisecond
		}
		if tick > 30*time.Second {
			tick = 30 * time.Second
		}
		go func() {
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.reapIdleSessions(idle)
				case <-s.baseCtx.Done():
					return
				}
			}
		}()
	}
}

// nextJob blocks until a queued job is available or the pool stops.
func (s *Server) nextJob() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return nil
		}
		if len(s.pending) > 0 {
			jb := s.pending[0]
			s.pending = s.pending[1:]
			jb.state = JobRunning
			jb.started = time.Now()
			s.running++
			s.updateQueueGauges()
			return jb
		}
		s.cond.Wait()
	}
}

// updateQueueGauges refreshes the depth gauges; callers hold the lock.
func (s *Server) updateQueueGauges() {
	s.metrics.Gauge("service.queue.depth", float64(len(s.pending)))
	s.metrics.Gauge("service.jobs.running", float64(s.running))
}

// Submit admits one job: validate, journal (fsync), queue. The
// returned status reflects the queued job. Admission errors map to
// HTTP statuses: ErrDraining 503, ErrQueueFull 429, ErrExists 409,
// ErrTooLarge 413; any other error is a 400-class spec problem.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	if spec.ID != "" && !validID(spec.ID) {
		return JobStatus{}, fmt.Errorf("service: invalid job id %q (want [A-Za-z0-9._-]{1,64})", spec.ID)
	}
	// Validate the spec fully before touching server state: the model
	// must compile and the sizing spec must lower.
	m, err := buildModel(&spec)
	if err != nil {
		return JobStatus{}, fmt.Errorf("service: bad circuit: %w", err)
	}
	if _, err := sizingSpec(&spec); err != nil {
		return JobStatus{}, fmt.Errorf("service: bad spec: %w", err)
	}
	if s.opt.MaxGates > 0 {
		if n := len(m.G.C.GateIDs()); n > s.opt.MaxGates {
			return JobStatus{}, fmt.Errorf("%w: %d gates > limit %d", ErrTooLarge, n, s.opt.MaxGates)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.stopped {
		return JobStatus{}, ErrDraining
	}
	if len(s.pending) >= s.opt.QueueDepth {
		s.metrics.Count("service.jobs.rejected", 1)
		return JobStatus{}, ErrQueueFull
	}
	if spec.ID == "" {
		spec.ID = fmt.Sprintf("job-%06d", s.seq+1)
	}
	if _, dup := s.jobs[spec.ID]; dup {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrExists, spec.ID)
	}
	s.seq++
	jb := &job{
		id:        spec.ID,
		seq:       s.seq,
		spec:      spec,
		state:     JobQueued,
		submitted: time.Now(),
		hub:       newEventHub(),
	}
	// The acceptance is durable before the client hears 202: journal
	// first, then queue. A crash after this line recovers the job.
	if err := s.journal.append(journalRecord{T: "accepted", ID: jb.id, Seq: jb.seq, Spec: &jb.spec}); err != nil {
		return JobStatus{}, err
	}
	s.jobs[jb.id] = jb
	s.order = append(s.order, jb.id)
	s.pending = append(s.pending, jb)
	s.metrics.Count("service.jobs.accepted", 1)
	s.updateQueueGauges()
	s.cond.Signal()
	return jb.status(), nil
}

// Status returns one job's status.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb := s.jobs[id]
	if jb == nil {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return jb.status(), nil
}

// Jobs lists every known job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Result returns a terminal job's result. The boolean reports whether
// the job has finished; querying an unknown ID errors.
func (s *Server) Result(id string) (*JobResult, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb := s.jobs[id]
	if jb == nil {
		return nil, false, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if !jb.state.Terminal() {
		return nil, false, nil
	}
	return jb.result, true, nil
}

// Cancel requests cancellation of a queued or running job. A queued
// job terminates immediately; a running one observes the cancellation
// at its next solver iteration boundary and keeps the best-so-far
// iterate in its result.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb := s.jobs[id]
	if jb == nil {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch jb.state {
	case JobQueued:
		for i, q := range s.pending {
			if q == jb {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				break
			}
		}
		jb.cancelled = true
		s.finishLocked(jb, JobCancelled, nil, "cancelled before start")
		s.updateQueueGauges()
	case JobRunning, JobRetryWait:
		jb.cancelled = true
		if jb.cancel != nil {
			jb.cancel()
		}
	}
	return jb.status(), nil
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the server down: admission stops (submits
// and readiness turn 503), queued jobs stay journaled for the next
// start, and running jobs get until the context deadline (or
// Options.DrainTimeout when ctx has none) to finish. Stragglers are
// then cancelled — the solver persists a boundary checkpoint on
// cancellation, so the interrupted jobs resume bit-identically on the
// next start. Drain returns once the pool is idle and the journal is
// closed; no accepted job is ever lost.
func (s *Server) Drain(ctx context.Context) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opt.DrainTimeout)
		defer cancel()
	}

	s.mu.Lock()
	s.draining = true
	s.stopped = true // idle workers exit; queued jobs stay journaled
	for _, jb := range s.pending {
		// Still queued at drain: recovered by the next start.
		s.metrics.Count("service.jobs.drained", 1)
		jb.hub.publish(`{"scope":"job","name":"drained"}`)
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	// Phase 1: wait for running jobs to finish on their own.
	idle := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(idle)
	}()
	select {
	case <-idle:
	case <-ctx.Done():
		// Phase 2: deadline passed — cancel the stragglers at their
		// next checkpoint boundary and wait for the pool to unwind.
		s.mu.Lock()
		for _, id := range s.order {
			jb := s.jobs[id]
			if jb.state == JobRunning || jb.state == JobRetryWait {
				if jb.cancel != nil {
					jb.cancel()
				}
			}
		}
		s.mu.Unlock()
		<-idle
	}
	s.stopAll()
	return s.journal.close()
}

// Kill abandons the server the way a SIGKILL would: every running
// solve's context is cancelled and nothing more is journaled — no
// terminal records, no checkpoint cleanup, no drain accounting. The
// state directory is left exactly as a hard-killed process would
// leave it (journal of acceptances + checkpoint files), which is what
// the chaos tests restart from. The worker goroutines are reaped so
// tests stay leak-free; a real SIGKILL is stricter only in dropping
// them mid-instruction, which the solver's write path already
// tolerates (checkpoints are atomic renames).
func (s *Server) Kill() {
	s.mu.Lock()
	s.killed = true
	s.stopped = true
	s.draining = true
	for _, id := range s.order {
		jb := s.jobs[id]
		if jb.cancel != nil {
			jb.cancel()
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.stopAll()
	s.workers.Wait()
	s.journal.close()
}

// finishLocked moves a job to a terminal state and journals it;
// callers hold the lock. Under kill nothing is journaled — the
// process is "dead".
func (s *Server) finishLocked(jb *job, state JobState, res *JobResult, errMsg string) {
	if s.killed {
		return
	}
	jb.state = state
	jb.result = res
	jb.errMsg = errMsg
	jb.finished = time.Now()
	var counter string
	var terminal string
	switch state {
	case JobDone:
		counter, terminal = "service.jobs.completed", "done"
	case JobFailed:
		counter, terminal = "service.jobs.failed", "failed"
	case JobCancelled:
		counter, terminal = "service.jobs.cancelled", "cancelled"
	}
	s.metrics.Count(counter, 1)
	if err := s.journal.append(journalRecord{T: "done", ID: jb.id, State: terminal, Error: errMsg, Res: res}); err != nil {
		// The in-memory state is authoritative for this process; a
		// failed terminal append means the job may rerun after a
		// restart, which is safe (solves are deterministic) and better
		// than losing it.
		s.metrics.Count("service.journal.errors", 1)
	}
	jb.hub.publish(`{"scope":"job","name":"` + terminal + `"}`)
	jb.hub.close()
	// A finished job's checkpoint is dead weight; failed jobs keep
	// theirs for post-mortems.
	if state == JobDone || state == JobCancelled {
		os.Remove(s.checkpointPath(jb.id))
		os.Remove(s.checkpointPath(jb.id) + ".bak")
	}
}

// checkpointPath is the job's checkpoint file in the state directory.
func (s *Server) checkpointPath(id string) string {
	return filepath.Join(s.opt.StateDir, id+".ckpt")
}

// ladderDepth is the length of the degradation ladder for a method.
func ladderDepth(m nlp.Method) int { return len(nlp.Ladder(m)) }
