package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/delay"
	"repro/internal/nlp"
	"repro/internal/sizing"
	"repro/internal/telemetry"
)

// runJob supervises one job through its attempts: per-job deadline,
// watchdog, periodic checkpoints, NumericalFailure retry-with-backoff
// stepping down the degradation ladder, and terminal classification.
// Cancellations split three ways — a user cancel terminates the job,
// a watchdog or deadline cancel fails it, and a drain/kill cancel
// requeues it (the journal still holds the acceptance, so the next
// start resumes it from its checkpoint).
func (s *Server) runJob(jb *job) {
	defer func() {
		s.mu.Lock()
		s.running--
		s.updateQueueGauges()
		s.mu.Unlock()
	}()

	runStart := time.Now()

	// Per-job context: the job's own timeout_ms, clamped by the
	// server-wide JobTimeout, over the server's base context.
	timeout := time.Duration(jb.spec.TimeoutMS) * time.Millisecond
	if s.opt.JobTimeout > 0 && (timeout <= 0 || timeout > s.opt.JobTimeout) {
		timeout = s.opt.JobTimeout
	}
	var jobCtx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		jobCtx, cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		jobCtx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()

	s.mu.Lock()
	if jb.cancelled {
		// The cancel endpoint won the race while the job sat queued.
		s.finishLocked(jb, JobCancelled, nil, "cancelled before start")
		s.mu.Unlock()
		return
	}
	jb.cancel = cancel
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		jb.cancel = nil
		s.mu.Unlock()
	}()

	jb.hub.publish(`{"scope":"job","name":"started"}`)

	m, err := buildModel(&jb.spec)
	if err != nil {
		s.mu.Lock()
		s.finishLocked(jb, JobFailed, nil, "bad circuit: "+err.Error())
		s.mu.Unlock()
		return
	}

	ckptPath := s.checkpointPath(jb.id)
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		jb.attempt = attempt + 1
		s.mu.Unlock()
		if s.testSolveDelay != nil {
			s.testSolveDelay(jb.id, attempt)
		}

		sp, err := sizingSpec(&jb.spec)
		if err != nil {
			s.mu.Lock()
			s.finishLocked(jb, JobFailed, nil, "bad spec: "+err.Error())
			s.mu.Unlock()
			return
		}

		// Telemetry chain: watchdog → SSE/stream splitter → metrics +
		// the caller's recorder. The watchdog is per-attempt so a
		// retried job starts with a clean progress history.
		var stallCancelled bool
		base := telemetry.Recorder(s.metrics)
		if s.opt.Recorder != nil {
			base = telemetry.Multi(s.metrics, s.opt.Recorder)
		}
		stream := &jobRecorder{next: base, hub: jb.hub}
		wd := telemetry.NewWatchdog(stream, telemetry.WatchdogOptions{
			OnStall: func(st telemetry.Stall) {
				s.metrics.Count("service.jobs.stalled", 1)
				s.mu.Lock()
				jb.stalls++
				n := jb.stalls
				s.mu.Unlock()
				jb.hub.publish(fmt.Sprintf(`{"scope":"job","name":"stall","episode":%d,"streak":%d}`, n, st.Streak))
				if s.opt.CancelOnStall > 0 && n >= s.opt.CancelOnStall {
					stallCancelled = true
					cancel()
				}
			},
		})
		sp.Recorder = wd

		if jb.spec.Greedy {
			s.runGreedy(jb, jobCtx, m, sp, runStart)
			return
		}

		// Checkpointing: every outer iteration into the state
		// directory; resume whatever a previous attempt (or a previous
		// process) left behind. On a retry the checkpoint steps one
		// rung down the degradation ladder before resuming.
		sp.Solver.CheckpointPath = ckptPath
		if ck, err := nlp.LoadCheckpoint(ckptPath); err == nil {
			if attempt > 0 {
				if ladder := nlp.Ladder(sp.Solver.Method); ck.Rung+1 < len(ladder) {
					ck.Rung++
					ck.RungRecoveries = 0
					ck.FailStreak = 0
					// Persist the step-down: a crash during this
					// attempt must not retry the failed rung.
					nlp.SaveCheckpoint(ckptPath, ck)
				}
			}
			sp.Solver.Resume = ck
		}
		if s.testWrap != nil {
			id, at := jb.id, attempt
			sp.WrapProblem = func(p *nlp.Problem) *nlp.Problem {
				return s.testWrap(id, at, p)
			}
		}

		out, err := sizing.SizeCtx(jobCtx, m, sp)
		if err != nil {
			s.mu.Lock()
			s.finishLocked(jb, JobFailed, nil, err.Error())
			s.mu.Unlock()
			return
		}

		res := resultFromOutcome(out, jb, runStart)
		status := out.Solver.Status

		switch {
		case status == nlp.Cancelled:
			if s.settleCancelled(jb, res, stallCancelled) {
				return
			}
			// Drain/kill: requeued, nothing terminal; the worker exits.
			return
		case status == nlp.DeadlineExceeded:
			// The per-job deadline fired (the base context carries no
			// deadline, so this is always the job's own budget).
			s.mu.Lock()
			s.finishLocked(jb, JobFailed, res, "deadline exceeded")
			s.mu.Unlock()
			return
		case status == nlp.NumericalFailure:
			s.mu.Lock()
			retriesLeft := jb.retries < s.opt.MaxRetries
			if retriesLeft {
				jb.retries++
				jb.state = JobRetryWait
			}
			n := jb.retries
			s.mu.Unlock()
			if !retriesLeft {
				// Out of retries: the outcome stands — possibly the
				// greedy fallback sizing, the ladder's last rung.
				s.mu.Lock()
				s.finishLocked(jb, JobFailed, res, "numerical failure (retries exhausted)")
				s.mu.Unlock()
				return
			}
			s.metrics.Count("service.jobs.retried", 1)
			jb.hub.publish(fmt.Sprintf(`{"scope":"job","name":"retry","attempt":%d}`, n))
			if !s.backoff(jobCtx, n) {
				// Cancelled mid-backoff: classify exactly like a
				// cancelled solve.
				if s.settleCancelled(jb, res, stallCancelled) {
					return
				}
				return
			}
			s.mu.Lock()
			if jb.cancelled {
				s.finishLocked(jb, JobCancelled, res, "cancelled")
				s.mu.Unlock()
				return
			}
			jb.state = JobRunning
			s.mu.Unlock()
			continue
		default:
			// Converged / MaxIterations / Stalled: a result.
			s.mu.Lock()
			s.finishLocked(jb, JobDone, res, "")
			s.mu.Unlock()
			return
		}
	}
}

// settleCancelled classifies a cancellation and reports whether the
// job reached a terminal state (false = drain/kill requeue).
func (s *Server) settleCancelled(jb *job, res *JobResult, stallCancelled bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case jb.cancelled:
		s.finishLocked(jb, JobCancelled, res, "cancelled")
		return true
	case stallCancelled:
		s.finishLocked(jb, JobFailed, res, "watchdog: solve stalled")
		return true
	default:
		// Drain or kill: back to queued. The journal's acceptance
		// record plus the checkpoint file carry the job across the
		// restart; nothing is journaled here (under kill the process
		// is "dead", under drain the acceptance already suffices).
		jb.state = JobQueued
		if !s.killed {
			s.metrics.Count("service.jobs.drained", 1)
			jb.hub.publish(`{"scope":"job","name":"drained"}`)
		}
		return false
	}
}

// backoff sleeps the exponential retry delay (MaxRetries doublings of
// RetryBackoff); false reports a cancellation during the wait.
func (s *Server) backoff(ctx context.Context, retry int) bool {
	d := s.opt.RetryBackoff << (retry - 1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runGreedy runs a greedy-routed job. The greedy sizer has no
// checkpoint — it is fast and deterministic, so a drained or killed
// greedy job simply reruns from scratch on the next start.
func (s *Server) runGreedy(jb *job, ctx context.Context, m *delay.Model, sp sizing.Spec, runStart time.Time) {
	opt, ok := sizing.GreedyFromSpec(sp)
	if !ok {
		// sizingSpec validated this at admission; only a stale journal
		// spec can get here.
		s.mu.Lock()
		s.finishLocked(jb, JobFailed, nil, "greedy jobs need a mu+Ksigma<= deadline constraint")
		s.mu.Unlock()
		return
	}
	gr, err := sizing.SizeGreedyCtx(ctx, m, opt)
	if err != nil {
		s.mu.Lock()
		s.finishLocked(jb, JobFailed, nil, err.Error())
		s.mu.Unlock()
		return
	}
	res := &JobResult{
		S:          gr.S,
		Mu:         gr.MuTmax,
		Sigma:      gr.SigmaTmax,
		Area:       gr.SumS,
		Status:     "greedy",
		StatusCode: -1,
		Outer:      gr.Steps,
		Met:        gr.Met,
		Recovered:  jb.recovered,
		RuntimeMS:  time.Since(runStart).Milliseconds(),
	}
	// The greedy sizer absorbs cancellation into a partial result;
	// classify by the context instead of a solver status.
	if ctx.Err() != nil {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.mu.Lock()
			s.finishLocked(jb, JobFailed, res, "deadline exceeded")
			s.mu.Unlock()
			return
		}
		if s.settleCancelled(jb, res, false) {
			return
		}
		return
	}
	s.mu.Lock()
	s.finishLocked(jb, JobDone, res, "")
	s.mu.Unlock()
}

// resultFromOutcome renders a solver outcome into the job's terminal
// result payload.
func resultFromOutcome(out *sizing.Outcome, jb *job, runStart time.Time) *JobResult {
	res := &JobResult{
		S:         out.S,
		Mu:        out.MuTmax,
		Sigma:     out.SigmaTmax,
		Area:      out.SumS,
		Fallback:  out.Fallback,
		Recovered: jb.recovered,
		RuntimeMS: time.Since(runStart).Milliseconds(),
	}
	if r := out.Solver; r != nil {
		res.Status = r.Status.String()
		res.StatusCode = int(r.Status)
		res.Outer = r.Outer
		res.Inner = r.Inner
		res.FuncEvals = r.FuncEvals
		res.Method = r.Method.String()
	}
	res.Retries = jb.retries
	return res
}
