package service

import (
	"encoding/json"
	"errors"
	"expvar"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"

	"repro/internal/telemetry"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs               submit (202 Accepted once journaled)
//	GET    /v1/jobs               list every known job
//	GET    /v1/jobs/{id}          one job's status
//	GET    /v1/jobs/{id}/result   terminal result (409 until finished)
//	GET    /v1/jobs/{id}/events   SSE convergence stream (alm.outer …)
//	POST   /v1/jobs/{id}/cancel   request cancellation
//	DELETE /v1/jobs/{id}          same as cancel
//	/v1/sessions/…                warm what-if sessions (sessions_http.go)
//	GET    /healthz               liveness (200 while the process runs)
//	GET    /readyz                readiness (503 once draining)
//	GET    /metrics               Prometheus exposition
//	GET    /debug/vars            expvar JSON
//	GET    /debug/pprof/…         pprof suite
//
// Admission errors map onto statuses: 400 bad spec, 409 duplicate ID,
// 413 circuit too large, 429 queue full (with Retry-After), 503
// draining.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionStatus)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionClose)
	mux.HandleFunc("PATCH /v1/sessions/{id}/sizes", s.handleSessionSizes)
	mux.HandleFunc("POST /v1/sessions/{id}/whatif", s.handleSessionWhatIf)
	mux.HandleFunc("GET /v1/sessions/{id}/timing", s.handleSessionTiming)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		telemetry.SampleRuntime(s.metrics)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.metrics.WriteProm(w)
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// replayFlushEvery batches the SSE history replay's flushes: small
// enough that a client sees progress promptly on long histories,
// large enough that the replay is not one syscall per event.
const replayFlushEvery = 32

// apiError is the uniform error payload.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// decodeStrict decodes exactly one JSON value from the request body:
// unknown fields are rejected, and so is anything after the value —
// without the trailing io.EOF check, `{"id":"a"}{"id":"b"}` (or any
// garbage suffix) would silently decode as the first value alone.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return errors.New("service: trailing data after JSON body")
	}
	return nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := decodeStrict(w, r, &spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		switch {
		case errors.Is(err, ErrDraining):
			writeErr(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrQueueFull):
			// The admission contract: a full queue is back-pressure,
			// not failure — tell the client when to come back.
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrExists):
			writeErr(w, http.StatusConflict, err)
		case errors.Is(err, ErrTooLarge):
			writeErr(w, http.StatusRequestEntityTooLarge, err)
		default:
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	// 202, not 200: the job is accepted and durable, not done.
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, done, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if !done {
		writeErr(w, http.StatusConflict, errors.New("service: job not finished"))
		return
	}
	if res == nil {
		// Terminal without a result payload (e.g. cancelled while
		// queued): an empty object keeps the endpoint JSON.
		writeJSON(w, http.StatusOK, struct{}{})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's convergence events as Server-Sent
// Events: the full history replays first, then live events until the
// job finishes or the client disconnects. Every event is one JSON
// object (`data: {...}`), deterministic across runs for the same job.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	jb := s.jobs[id]
	s.mu.Unlock()
	if jb == nil {
		writeErr(w, http.StatusNotFound, ErrUnknownJob)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errors.New("service: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	hist, live := jb.hub.subscribe()
	if live != nil {
		defer jb.hub.unsubscribe(live)
	}
	ctx := r.Context()
	var sb strings.Builder
	for i, ev := range hist {
		// A disconnected client must not keep the handler replaying a
		// long history into a dead connection, and a connected one
		// should see events promptly rather than after the whole
		// replay — so poll the request context and flush in batches.
		if ctx.Err() != nil {
			return
		}
		sb.Reset()
		sb.WriteString("data: ")
		sb.WriteString(ev)
		sb.WriteString("\n\n")
		if _, err := w.Write([]byte(sb.String())); err != nil {
			return
		}
		if (i+1)%replayFlushEvery == 0 {
			fl.Flush()
		}
	}
	fl.Flush()
	if live == nil {
		// The stream already ended; the replay was complete.
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			if _, err := w.Write([]byte("data: " + ev + "\n\n")); err != nil {
				return
			}
			fl.Flush()
		case <-ctx.Done():
			return
		}
	}
}
