package service

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestEventHubLaggingSubscriberClosed pins the complete-sequence
// contract: a subscriber that stops draining its channel is closed
// (not silently skipped), so the client knows to reconnect and replay
// the full history instead of consuming a stream with holes.
func TestEventHubLaggingSubscriberClosed(t *testing.T) {
	h := newEventHub()
	_, live := h.subscribe()
	if live == nil {
		t.Fatal("subscribe on an open hub returned no live channel")
	}
	// Stall the subscriber: fill its buffer and keep publishing. The
	// overflow publish must close the channel rather than drop events.
	total := cap(live) + 8
	for i := 0; i < total; i++ {
		h.publish(fmt.Sprintf(`{"n":%d}`, i))
	}
	received := 0
	closed := false
	for {
		ev, ok := <-live
		if !ok {
			closed = true
			break
		}
		received++
		_ = ev
	}
	if !closed {
		t.Fatal("lagging subscriber's channel was never closed")
	}
	if received != cap(live) {
		t.Fatalf("drained %d events, want exactly the %d buffered before the overflow", received, cap(live))
	}
	h.mu.Lock()
	subs, lagged, hist := len(h.subs), h.lagged, len(h.history)
	h.mu.Unlock()
	if subs != 0 {
		t.Fatalf("%d subscribers still registered after lagging close", subs)
	}
	if lagged != 1 {
		t.Fatalf("lagged = %d, want 1", lagged)
	}
	if hist != total {
		t.Fatalf("history holds %d events, want all %d (replay must be complete)", hist, total)
	}
	// A reconnect replays everything the laggard missed.
	replay, live2 := h.subscribe()
	if len(replay) != total {
		t.Fatalf("reconnect replay has %d events, want %d", len(replay), total)
	}
	if live2 != nil {
		h.unsubscribe(live2)
	}
}

// TestEventHubHealthySubscriberSurvives guards against over-eager
// closing: a subscriber that keeps up receives every event live.
func TestEventHubHealthySubscriberSurvives(t *testing.T) {
	h := newEventHub()
	_, live := h.subscribe()
	got := make(chan int)
	go func() {
		n := 0
		for range live {
			n++
		}
		got <- n
	}()
	const total = 500
	for i := 0; i < total; i++ {
		h.publish(`{"scope":"alm","name":"outer"}`)
		if i%50 == 0 {
			time.Sleep(time.Millisecond) // let the reader drain
		}
	}
	h.close()
	if n := <-got; n != total {
		t.Fatalf("healthy subscriber received %d of %d events", n, total)
	}
	h.mu.Lock()
	lagged := h.lagged
	h.mu.Unlock()
	if lagged != 0 {
		t.Fatalf("healthy subscriber was closed as lagging (%d)", lagged)
	}
}

// TestSubmitRejectsTrailingGarbage pins the strict-body contract on
// the job and session submit endpoints: one JSON value, nothing after
// it.
func TestSubmitRejectsTrailingGarbage(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1})
	srv.Start()

	cases := []struct {
		path, body string
	}{
		{"/v1/jobs", `{"id":"tg1","circuit":"tree7","objective":"area","constraints":["mu+3sigma<=6"]}{"id":"evil"}`},
		{"/v1/jobs", `{"id":"tg2","circuit":"tree7","objective":"area","constraints":["mu+3sigma<=6"]} trailing`},
		{"/v1/sessions", `{"id":"sg1","circuit":"tree7"}{"id":"evil"}`},
		{"/v1/sessions", `{"id":"sg2","circuit":"tree7"} x`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s with trailing garbage: HTTP %d, want 400", c.path, resp.StatusCode)
		}
	}
	// Well-formed bodies (trailing whitespace allowed by the decoder's
	// EOF semantics is NOT — only a clean end) still pass.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"id":"ok1","circuit":"tree7","objective":"area","constraints":["mu+3sigma<=6"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("clean submit: HTTP %d, want 202", resp.StatusCode)
	}
	waitTerminal(t, ts, "ok1")
}

// TestEventsReplayDisconnect covers the mid-replay disconnect path: a
// client that drops during a long history replay must not pin the
// handler (and its subscription) for the rest of the replay.
func TestEventsReplayDisconnect(t *testing.T) {
	srv, ts := testServer(t, Options{Pool: 1})
	srv.Start()

	// Craft a finished job with a long synthetic history directly; the
	// handler only needs the hub.
	jb := &job{id: "replay", state: JobDone, hub: newEventHub()}
	for i := 0; i < 200000; i++ {
		jb.hub.history = append(jb.hub.history, fmt.Sprintf(`{"scope":"alm","name":"outer","it":%d}`, i))
	}
	srv.mu.Lock()
	srv.jobs["replay"] = jb
	srv.order = append(srv.order, "replay")
	srv.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/replay/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one event to prove the replay streams before it completes
	// (the periodic flush), then drop the connection.
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "data: ") {
		t.Fatalf("first SSE line %q, err %v", line, err)
	}
	cancel()
	resp.Body.Close()

	// The handler must notice the disconnect mid-replay and return
	// promptly instead of writing out the remaining history.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		srv.mu.Lock()
		hub := srv.jobs["replay"].hub
		srv.mu.Unlock()
		hub.mu.Lock()
		subs := len(hub.subs)
		hub.mu.Unlock()
		if subs == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("events handler still subscribed long after the client disconnected")
}
