package service

import (
	"path/filepath"
	"testing"
	"time"
)

func TestRunLoadTestWithChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos load harness is a multi-second test")
	}
	opt := LoadTestOptions{
		Jobs:       8,
		Clients:    3,
		Kills:      1,
		Pool:       2,
		QueueDepth: 8,
		SolveDelay: 60 * time.Millisecond,
		Timeout:    90 * time.Second,
	}
	rep, err := RunLoadTest(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done+rep.Failed+rep.Cancelled != opt.Jobs {
		t.Fatalf("terminal states %d+%d+%d != %d jobs", rep.Done, rep.Failed, rep.Cancelled, opt.Jobs)
	}
	if rep.Failed != 0 || rep.Cancelled != 0 {
		t.Fatalf("chaos run must not fail jobs: %+v", rep)
	}
	if rep.Restarts != opt.Kills {
		t.Fatalf("restarts %d, want %d", rep.Restarts, opt.Kills)
	}
	// Accepted jobs across incarnations equal the job count (each job
	// is journaled exactly once; resubmits after a kill hit 409).
	if n := rep.Counters["service.jobs.accepted"]; n != int64(opt.Jobs) {
		t.Fatalf("accepted %d, want %d", n, opt.Jobs)
	}
	// Completions across incarnations also cover every job.
	if n := rep.Counters["service.jobs.completed"]; n != int64(opt.Jobs) {
		t.Fatalf("completed %d, want %d", n, opt.Jobs)
	}
	if rep.LatencyMS.P50 <= 0 || rep.LatencyMS.P99 < rep.LatencyMS.P50 {
		t.Fatalf("latency summary inconsistent: %+v", rep.LatencyMS)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput %v", rep.Throughput)
	}

	path := filepath.Join(t.TempDir(), "BENCH_service.json")
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMS(t *testing.T) {
	lat := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{0.5, 5}, {0.9, 9}, {0.99, 10}, {1.0, 10}}
	for _, c := range cases {
		if got := quantileMS(lat, c.p); got != c.want {
			t.Errorf("q(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := quantileMS(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}
