package service

import (
	"errors"
	"net/http"
	"strconv"
)

// The session endpoints (mounted by Handler):
//
//	POST   /v1/sessions                create a warm session (201 once
//	                                   journaled; body = SessionSpec)
//	GET    /v1/sessions                list the session roster
//	GET    /v1/sessions/{id}           one session's status
//	DELETE /v1/sessions/{id}           close a session
//	PATCH  /v1/sessions/{id}/sizes     apply size nudges
//	                                   (body = {"sizes":{"g3":1.5,...}})
//	POST   /v1/sessions/{id}/whatif    trial a nudge batch without
//	                                   mutating session state
//	GET    /v1/sessions/{id}/timing    timing view: ?k= overrides the
//	                                   risk factor, ?top= bounds the
//	                                   criticality list (default 16,
//	                                   0 = all gates)
//
// Error mapping matches the job endpoints: 400 bad spec/body, 404
// unknown session, 409 duplicate ID, 413 circuit too large, 429
// session roster full (Retry-After), 503 draining. Every mutating
// response carries `rebuilt`, true when this touch transparently
// rebuilt an engine the LRU had evicted.

// sizesBody is the PATCH /sizes and POST /whatif payload.
type sizesBody struct {
	Sizes map[string]float64 `json:"sizes"`
}

// writeSessionErr maps a session-layer error onto its HTTP status.
func writeSessionErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownSession):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrSessionLimit):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrExists):
		writeErr(w, http.StatusConflict, err)
	case errors.Is(err, ErrTooLarge):
		writeErr(w, http.StatusRequestEntityTooLarge, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var spec SessionSpec
	if err := decodeStrict(w, r, &spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.CreateSession(spec)
	if err != nil {
		writeSessionErr(w, err)
		return
	}
	// 201, not 202: unlike a job, the session is ready the moment the
	// create returns — the warm engine already holds a full sweep.
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Sessions())
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.SessionStatus(r.PathValue("id"))
	if err != nil {
		writeSessionErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	if err := s.CloseSession(r.PathValue("id")); err != nil {
		writeSessionErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

func (s *Server) handleSessionSizes(w http.ResponseWriter, r *http.Request) {
	var body sizesBody
	if err := decodeStrict(w, r, &body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rep, err := s.SessionNudge(r.PathValue("id"), body.Sizes)
	if err != nil {
		writeSessionErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleSessionWhatIf(w http.ResponseWriter, r *http.Request) {
	var body sizesBody
	if err := decodeStrict(w, r, &body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rep, err := s.SessionWhatIf(r.PathValue("id"), body.Sizes)
	if err != nil {
		writeSessionErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleSessionTiming(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var k float64
	if v := q.Get("k"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, errors.New("service: bad k parameter"))
			return
		}
		k = f
	}
	top := 16
	if v := q.Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, errors.New("service: bad top parameter"))
			return
		}
		top = n
	}
	rep, err := s.SessionTiming(r.PathValue("id"), k, top)
	if err != nil {
		writeSessionErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
